// Package scm implements structural causal models: directed acyclic graphs
// of feature mechanisms that can be sampled observationally or under *soft
// interventions* — interventions that modify a mechanism's conditional
// distribution (mean shift, noise rescale, mechanism dampening) rather than
// clamping the value.
//
// The paper treats the drift between a source network domain and a target
// network domain as exactly such soft interventions on an unknown feature
// subset (§V-A). Building the synthetic datasets on an SCM therefore gives
// the reproduction two things the gated ITU datasets cannot: (1) domain
// shift whose generative process matches the paper's modelling assumption,
// and (2) ground-truth intervention targets against which the FS method's
// variant-feature identification can be scored.
package scm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Nonlinearity selects a node's mechanism shape.
type Nonlinearity int

// Supported mechanism nonlinearities.
const (
	Linear Nonlinearity = iota + 1
	Tanh
	ReLU
)

// String implements fmt.Stringer.
func (n Nonlinearity) String() string {
	switch n {
	case Linear:
		return "linear"
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	default:
		return fmt.Sprintf("Nonlinearity(%d)", int(n))
	}
}

// Node is one feature's structural mechanism:
//
//	X_i = f(Σ_j w_j · X_parent(j) + bias) + noiseStd·ε,  ε ~ N(0,1)
type Node struct {
	Parents  []int     // indices of parent nodes; must all be < this node's index
	Weights  []float64 // one weight per parent
	Bias     float64
	NoiseStd float64
	NL       Nonlinearity
}

// InterventionKind enumerates the supported soft interventions.
type InterventionKind int

// Soft intervention kinds. Each alters P(X | Pa(X)) without severing the
// causal mechanism entirely:
//
//   - MeanShift adds Amount to the node's bias.
//   - NoiseScale multiplies the node's noise standard deviation by Amount.
//   - MechanismScale multiplies all incoming edge weights by Amount
//     (dampening or amplifying the causal influence of the parents).
const (
	MeanShift InterventionKind = iota + 1
	NoiseScale
	MechanismScale
)

// String implements fmt.Stringer.
func (k InterventionKind) String() string {
	switch k {
	case MeanShift:
		return "mean-shift"
	case NoiseScale:
		return "noise-scale"
	case MechanismScale:
		return "mechanism-scale"
	default:
		return fmt.Sprintf("InterventionKind(%d)", int(k))
	}
}

// Intervention is a soft intervention applied to a single target node.
type Intervention struct {
	Target int
	Kind   InterventionKind
	Amount float64
}

// Model is a structural causal model over len(Nodes) features, stored in
// topological order (every node's parents have smaller indices).
type Model struct {
	Nodes []Node
}

// ErrInvalidModel is returned by Validate for malformed models.
var ErrInvalidModel = errors.New("scm: invalid model")

// Validate checks topological ordering and weight/parent agreement.
func (m *Model) Validate() error {
	if len(m.Nodes) == 0 {
		return fmt.Errorf("%w: no nodes", ErrInvalidModel)
	}
	for i, nd := range m.Nodes {
		if len(nd.Parents) != len(nd.Weights) {
			return fmt.Errorf("%w: node %d has %d parents but %d weights",
				ErrInvalidModel, i, len(nd.Parents), len(nd.Weights))
		}
		for _, p := range nd.Parents {
			if p < 0 || p >= i {
				return fmt.Errorf("%w: node %d has parent %d (must be in [0,%d))",
					ErrInvalidModel, i, p, i)
			}
		}
		if nd.NoiseStd < 0 {
			return fmt.Errorf("%w: node %d has negative noise std", ErrInvalidModel, i)
		}
		switch nd.NL {
		case Linear, Tanh, ReLU:
		default:
			return fmt.Errorf("%w: node %d has unknown nonlinearity %d", ErrInvalidModel, i, nd.NL)
		}
	}
	return nil
}

// NumFeatures returns the number of nodes/features.
func (m *Model) NumFeatures() int { return len(m.Nodes) }

// SampleConfig configures a draw from the model.
type SampleConfig struct {
	N             int            // number of samples
	Interventions []Intervention // soft interventions (nil for observational)
	// Exogenous is an optional additive per-sample, per-node input
	// (e.g. class-signature signal). When non-nil it must be N rows of
	// NumFeatures() values. It is added inside the nonlinearity, i.e.
	// it acts as an extra exogenous parent.
	Exogenous [][]float64
	Rng       *rand.Rand // required
}

// Sample draws rows from the (possibly intervened) model. Each row holds
// one value per node, in node order.
func (m *Model) Sample(cfg SampleConfig) ([][]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("scm: sample count %d must be positive", cfg.N)
	}
	if cfg.Rng == nil {
		return nil, errors.New("scm: SampleConfig.Rng is required")
	}
	d := len(m.Nodes)
	if cfg.Exogenous != nil {
		if len(cfg.Exogenous) != cfg.N {
			return nil, fmt.Errorf("scm: exogenous has %d rows, want %d", len(cfg.Exogenous), cfg.N)
		}
		for i, row := range cfg.Exogenous {
			if len(row) != d {
				return nil, fmt.Errorf("scm: exogenous row %d has %d values, want %d", i, len(row), d)
			}
		}
	}

	// Materialize per-node intervention adjustments.
	biasAdj := make([]float64, d)
	noiseMul := make([]float64, d)
	weightMul := make([]float64, d)
	for i := range noiseMul {
		noiseMul[i] = 1
		weightMul[i] = 1
	}
	for _, iv := range cfg.Interventions {
		if iv.Target < 0 || iv.Target >= d {
			return nil, fmt.Errorf("scm: intervention target %d out of range [0,%d)", iv.Target, d)
		}
		switch iv.Kind {
		case MeanShift:
			biasAdj[iv.Target] += iv.Amount
		case NoiseScale:
			noiseMul[iv.Target] *= iv.Amount
		case MechanismScale:
			weightMul[iv.Target] *= iv.Amount
		default:
			return nil, fmt.Errorf("scm: unknown intervention kind %d", iv.Kind)
		}
	}

	out := make([][]float64, cfg.N)
	for s := 0; s < cfg.N; s++ {
		row := make([]float64, d)
		for i, nd := range m.Nodes {
			pre := nd.Bias + biasAdj[i]
			for j, p := range nd.Parents {
				pre += nd.Weights[j] * weightMul[i] * row[p]
			}
			if cfg.Exogenous != nil {
				pre += cfg.Exogenous[s][i]
			}
			v := applyNL(nd.NL, pre)
			v += nd.NoiseStd * noiseMul[i] * cfg.Rng.NormFloat64()
			row[i] = v
		}
		out[s] = row
	}
	return out, nil
}

func applyNL(nl Nonlinearity, x float64) float64 {
	switch nl {
	case Tanh:
		return math.Tanh(x)
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	default:
		return x
	}
}

// Targets returns the sorted, de-duplicated set of intervened node indices.
func Targets(ivs []Intervention) []int {
	seen := make(map[int]bool, len(ivs))
	var out []int
	for _, iv := range ivs {
		if !seen[iv.Target] {
			seen[iv.Target] = true
			out = append(out, iv.Target)
		}
	}
	// insertion-order independent: selection sort on the small slice
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// Descendants returns all nodes reachable from any of the given roots via
// directed edges (excluding the roots themselves unless reachable from
// another root).
func (m *Model) Descendants(roots []int) []int {
	d := len(m.Nodes)
	isRoot := make([]bool, d)
	for _, r := range roots {
		if r >= 0 && r < d {
			isRoot[r] = true
		}
	}
	reach := make([]bool, d)
	// Nodes are topologically ordered, so one forward pass suffices.
	for i := 0; i < d; i++ {
		for _, p := range m.Nodes[i].Parents {
			if isRoot[p] || reach[p] {
				reach[i] = true
				break
			}
		}
	}
	var out []int
	for i, r := range reach {
		if r {
			out = append(out, i)
		}
	}
	return out
}
