package scm

import (
	"fmt"
	"math/rand"
)

// RandomConfig controls random model generation.
type RandomConfig struct {
	NumFeatures int     // number of nodes (required)
	MaxParents  int     // maximum parents per node (default 3)
	EdgeProb    float64 // probability a candidate parent edge is kept (default 0.5)
	WeightScale float64 // edge weights drawn U(-w, w) excluding (-0.2w, 0.2w) (default 1)
	NoiseStd    float64 // base noise std per node (default 0.3)
	NoiseJitter float64 // noise std jitter fraction (default 0.5)
	TanhProb    float64 // probability a node uses Tanh instead of Linear (default 0.3)
	Seed        int64
}

// RandomModel generates a random topologically-ordered SCM. Parent
// candidates for node i are drawn from a recent window of earlier nodes,
// which produces the block-correlated structure typical of telemetry
// metrics (per-VNF metric groups influencing each other).
func RandomModel(cfg RandomConfig) (*Model, error) {
	if cfg.NumFeatures <= 0 {
		return nil, fmt.Errorf("scm: NumFeatures %d must be positive", cfg.NumFeatures)
	}
	if cfg.MaxParents == 0 {
		cfg.MaxParents = 3
	}
	if cfg.EdgeProb == 0 {
		cfg.EdgeProb = 0.5
	}
	if cfg.WeightScale == 0 {
		cfg.WeightScale = 1
	}
	if cfg.NoiseStd == 0 {
		cfg.NoiseStd = 0.3
	}
	if cfg.NoiseJitter == 0 {
		cfg.NoiseJitter = 0.5
	}
	if cfg.TanhProb == 0 {
		cfg.TanhProb = 0.3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	const window = 20 // parent candidates come from the previous `window` nodes
	nodes := make([]Node, cfg.NumFeatures)
	for i := range nodes {
		nd := Node{
			Bias:     rng.NormFloat64() * 0.5,
			NoiseStd: cfg.NoiseStd * (1 + cfg.NoiseJitter*(rng.Float64()*2-1)),
			NL:       Linear,
		}
		if rng.Float64() < cfg.TanhProb {
			nd.NL = Tanh
		}
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		// Sample up to MaxParents distinct candidates from [lo, i).
		candidates := rng.Perm(i - lo)
		for _, off := range candidates {
			if len(nd.Parents) >= cfg.MaxParents {
				break
			}
			if rng.Float64() > cfg.EdgeProb {
				continue
			}
			p := lo + off
			w := (0.2 + 0.8*rng.Float64()) * cfg.WeightScale
			if rng.Float64() < 0.5 {
				w = -w
			}
			nd.Parents = append(nd.Parents, p)
			nd.Weights = append(nd.Weights, w)
		}
		nodes[i] = nd
	}
	m := &Model{Nodes: nodes}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// RandomInterventions draws k soft interventions on distinct targets chosen
// uniformly from eligible (all nodes if eligible is nil). Kinds and amounts
// are randomized: mean shifts of magnitude in [shiftLo, shiftHi] (random
// sign), noise scales in [1.5, 3], mechanism scales in [0.2, 0.6].
func RandomInterventions(k int, eligible []int, shiftLo, shiftHi float64, numFeatures int, seed int64) ([]Intervention, error) {
	if k <= 0 {
		return nil, fmt.Errorf("scm: intervention count %d must be positive", k)
	}
	pool := eligible
	if pool == nil {
		pool = make([]int, numFeatures)
		for i := range pool {
			pool[i] = i
		}
	}
	if k > len(pool) {
		return nil, fmt.Errorf("scm: %d interventions requested but only %d eligible targets", k, len(pool))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(pool))
	out := make([]Intervention, 0, k)
	for _, pi := range perm[:k] {
		target := pool[pi]
		iv := Intervention{Target: target}
		switch rng.Intn(3) {
		case 0:
			iv.Kind = MeanShift
			iv.Amount = shiftLo + rng.Float64()*(shiftHi-shiftLo)
			if rng.Float64() < 0.5 {
				iv.Amount = -iv.Amount
			}
		case 1:
			iv.Kind = NoiseScale
			iv.Amount = 1.5 + 1.5*rng.Float64()
		default:
			iv.Kind = MechanismScale
			iv.Amount = 0.2 + 0.4*rng.Float64()
		}
		out = append(out, iv)
	}
	return out, nil
}
