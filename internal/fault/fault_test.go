package fault

import (
	"errors"
	"testing"
	"time"
)

// fireSeq records the outcome of n Fires against one site as a compact
// string, panics included.
func fireSeq(f *Injector, name string, n int) string {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = func() (c byte) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(Panic); !ok {
						panic(r) // not ours
					}
					c = 'p'
				}
			}()
			if err := f.Fire(name); err != nil {
				return 'e'
			}
			return '.'
		}()
	}
	return string(out)
}

func TestFireDeterministicAcrossRuns(t *testing.T) {
	spec := Spec{ErrRate: 0.3, PanicRate: 0.1}
	mk := func(seed int64) *Injector {
		f := New(seed)
		f.Set("a", spec)
		f.Set("b", spec)
		return f
	}
	f1, f2 := mk(42), mk(42)
	// Interleave differently: site sequences must not depend on how other
	// sites are exercised.
	seqA1 := fireSeq(f1, "a", 64)
	seqB1 := fireSeq(f1, "b", 64)
	var seqA2, seqB2 string
	for i := 0; i < 64; i++ {
		seqB2 += fireSeq(f2, "b", 1)
		seqA2 += fireSeq(f2, "a", 1)
	}
	if seqA1 != seqA2 || seqB1 != seqB2 {
		t.Errorf("interleaving changed per-site sequences:\na: %s\n   %s\nb: %s\n   %s",
			seqA1, seqA2, seqB1, seqB2)
	}
	if seqA1 == seqB1 {
		t.Error("sites a and b drew identical sequences; per-site seeds not decorrelated")
	}
	if fireSeq(mk(43), "a", 64) == seqA1 {
		t.Error("different injector seeds produced the same sequence")
	}
}

func TestFireRateEndpoints(t *testing.T) {
	f := New(1)
	f.Set("always", Spec{ErrRate: 1})
	f.Set("never", Spec{ErrRate: 0, SlowRate: 0})
	for i := 0; i < 32; i++ {
		if err := f.Fire("always"); !errors.Is(err, ErrInjected) {
			t.Fatalf("err=1 site returned %v, want ErrInjected", err)
		}
		if err := f.Fire("never"); err != nil {
			t.Fatalf("disarmed site returned %v", err)
		}
		if err := f.Fire("unregistered"); err != nil {
			t.Fatalf("unknown site returned %v", err)
		}
	}
	st := f.Stats("always")
	if st.Fires != 32 || st.Errs != 32 {
		t.Errorf("always stats = %+v, want 32 fires / 32 errs", st)
	}
	if st := f.Stats("never"); st.Fires != 0 {
		t.Errorf("disarmed site recorded %d fires", st.Fires)
	}
}

func TestFireLatencyAndClear(t *testing.T) {
	f := New(7)
	var slept time.Duration
	f.sleep = func(d time.Duration) { slept += d }
	f.Set("s", Spec{SlowRate: 1, SlowFor: 5 * time.Millisecond})
	for i := 0; i < 4; i++ {
		if err := f.Fire("s"); err != nil {
			t.Fatal(err)
		}
	}
	if want := 20 * time.Millisecond; slept != want {
		t.Errorf("slept %v, want %v", slept, want)
	}
	f.Clear()
	if err := f.Fire("s"); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats("s"); st.Fires != 4 || st.Slows != 4 {
		t.Errorf("stats after Clear = %+v, want fires=4 slows=4 preserved", st)
	}
}

func TestNilInjectorIsNoop(t *testing.T) {
	var f *Injector
	f.Set("x", Spec{ErrRate: 1})
	f.Clear()
	f.Load(map[string]Spec{"x": {ErrRate: 1}})
	if err := f.Fire("x"); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats("x"); st != (Stats{}) {
		t.Errorf("nil stats = %+v", st)
	}
	if s := f.Summary(); s != "faults: none" {
		t.Errorf("nil summary = %q", s)
	}
}

func TestParsePlan(t *testing.T) {
	plan, err := ParsePlan("batch.exec:err=0.25,slow=5ms@0.5,panic=0.05; bundle.load:err=1")
	if err != nil {
		t.Fatal(err)
	}
	exec := plan["batch.exec"]
	if exec.ErrRate != 0.25 || exec.PanicRate != 0.05 || exec.SlowRate != 0.5 || exec.SlowFor != 5*time.Millisecond {
		t.Errorf("batch.exec spec = %+v", exec)
	}
	if load := plan["bundle.load"]; load.ErrRate != 1 {
		t.Errorf("bundle.load spec = %+v", load)
	}
	// slow without @rate defaults to 1.
	plan, err = ParsePlan("x:slow=2ms")
	if err != nil {
		t.Fatal(err)
	}
	if s := plan["x"]; s.SlowRate != 1 || s.SlowFor != 2*time.Millisecond {
		t.Errorf("slow default-rate spec = %+v", s)
	}
	if plan, err := ParsePlan("  "); err != nil || len(plan) != 0 {
		t.Errorf("empty plan = %v, %v", plan, err)
	}
	for _, bad := range []string{
		"noscolon", "x:err=2", "x:err=nope", "x:mystery=1", "x:slow=abc", "x:err", ":err=1",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestPanicValueNamesSite(t *testing.T) {
	f := New(3)
	f.Set("boom", Spec{PanicRate: 1})
	defer func() {
		r := recover()
		p, ok := r.(Panic)
		if !ok || p.Site != "boom" {
			t.Errorf("recovered %#v, want Panic{Site: boom}", r)
		}
	}()
	_ = f.Fire("boom")
	t.Fatal("Fire did not panic")
}
