package fault

import (
	"strings"
	"testing"
)

func TestSiteRegistry(t *testing.T) {
	RegisterSite("test.alpha", "first test site")
	RegisterSite("test.beta", "second test site")

	names := KnownSites()
	var sawAlpha, sawBeta bool
	for _, n := range names {
		sawAlpha = sawAlpha || n == "test.alpha"
		sawBeta = sawBeta || n == "test.beta"
	}
	if !sawAlpha || !sawBeta {
		t.Fatalf("KnownSites() = %v, want to include test.alpha and test.beta", names)
	}
	if got := SiteDoc("test.alpha"); got != "first test site" {
		t.Fatalf("SiteDoc(test.alpha) = %q", got)
	}
	if got := SiteDoc("no.such.site"); got != "" {
		t.Fatalf("SiteDoc(unknown) = %q, want empty", got)
	}
}

func TestValidatePlan(t *testing.T) {
	RegisterSite("test.known", "a registered site")

	ok, err := ParsePlan("test.known:err=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePlan(ok); err != nil {
		t.Fatalf("ValidatePlan(known site) = %v", err)
	}

	bad, err := ParsePlan("test.knwon:err=0.5") // typo'd site
	if err != nil {
		t.Fatal(err)
	}
	err = ValidatePlan(bad)
	if err == nil {
		t.Fatal("ValidatePlan(typo'd site) = nil, want error")
	}
	if !strings.Contains(err.Error(), "test.knwon") {
		t.Fatalf("error %q does not name the unknown site", err)
	}
	if !strings.Contains(err.Error(), "test.known") {
		t.Fatalf("error %q does not list the known sites", err)
	}

	if err := ValidatePlan(map[string]Spec{}); err != nil {
		t.Fatalf("ValidatePlan(empty) = %v", err)
	}
}
