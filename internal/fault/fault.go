// Package fault is a deterministic, seed-driven fault injector for chaos
// testing the serving stack. Call sites name injection points ("sites");
// a test or chaos run arms sites with error, panic, and latency rates,
// and every Fire draws from a per-site PRNG derived from (seed, site
// name) alone — so a chaos run replays bit-identically for a given seed
// and per-site call sequence, regardless of how unrelated sites
// interleave. A nil *Injector (the production default) makes Fire a
// single nil check.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error, so
// recovery paths and tests can tell chaos from genuine failures.
var ErrInjected = errors.New("fault: injected error")

// Panic is the value thrown by an injected panic. Recovery sites that
// want to treat chaos panics like real ones simply don't special-case it;
// the chaos suite asserts on the type to prove the panic travelled
// through the recovery machinery.
type Panic struct{ Site string }

func (p Panic) String() string { return "fault: injected panic at " + p.Site }

// Spec arms one site. Rates are probabilities in [0,1], drawn
// independently per Fire in the fixed order slow → error → panic (every
// Fire consumes exactly three PRNG draws so sequences stay aligned even
// as rates change).
type Spec struct {
	ErrRate   float64       // probability Fire returns an ErrInjected-wrapped error
	PanicRate float64       // probability Fire panics with a Panic value
	SlowRate  float64       // probability Fire sleeps SlowFor before deciding
	SlowFor   time.Duration // injected latency when the slow draw hits
}

func (s Spec) enabled() bool { return s.ErrRate > 0 || s.PanicRate > 0 || s.SlowRate > 0 }

// Stats counts what one site actually injected.
type Stats struct {
	Fires  int64 // Fire calls against an armed site
	Slows  int64 // latency injections
	Errs   int64 // injected errors
	Panics int64 // injected panics
}

type site struct {
	mu    sync.Mutex
	spec  Spec
	rng   *rand.Rand
	stats Stats
}

// Hook observes injections as they fire: kind is "slow", "err", or
// "panic". Hooks run on the injecting goroutine, after the draw but before
// the fault takes effect (so a panic injection is observable even though
// Fire never returns from it) — keep them fast and non-blocking. The
// serving stack wires this to the flight recorder.
type Hook func(site, kind string)

// Injector holds the armed sites. The zero of *Injector (nil) is the
// production no-op; construct one with New only for chaos runs.
type Injector struct {
	seed  int64
	sleep func(time.Duration) // injectable so latency tests don't wall-clock

	mu    sync.Mutex
	sites map[string]*site
	hook  Hook
}

// New returns an injector with no sites armed. seed scopes every
// per-site PRNG: the same seed and per-site call sequence reproduce the
// same faults.
func New(seed int64) *Injector {
	return &Injector{seed: seed, sleep: time.Sleep, sites: make(map[string]*site)}
}

// siteSeed mixes the injector seed with the site name through a
// splitmix64 finalizer so each site gets a decorrelated stream that
// depends only on (seed, name) — never on arming order.
func siteSeed(seed int64, name string) int64 {
	z := uint64(seed)
	for _, c := range []byte(name) {
		z = (z ^ uint64(c)) * 0x9e3779b97f4a7c15
	}
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Set arms (or re-arms) a site. A zero Spec disarms it but keeps its
// stats and PRNG state.
func (f *Injector) Set(name string, spec Spec) {
	if f == nil {
		return
	}
	f.mu.Lock()
	s := f.sites[name]
	if s == nil {
		s = &site{rng: rand.New(rand.NewSource(siteSeed(f.seed, name)))}
		f.sites[name] = s
	}
	f.mu.Unlock()
	s.mu.Lock()
	s.spec = spec
	s.mu.Unlock()
}

// Clear disarms every site (stats survive) — "faults stop" in a chaos
// run, after which the serving path must recover.
func (f *Injector) Clear() {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.sites {
		s.mu.Lock()
		s.spec = Spec{}
		s.mu.Unlock()
	}
}

// SetHook installs (or, with nil, removes) the injection observer.
func (f *Injector) SetHook(h Hook) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.hook = h
	f.mu.Unlock()
}

// Fire runs the site's armed faults: maybe sleep, maybe return an error,
// maybe panic (in that order). Unarmed sites and nil injectors cost one
// branch and consume no randomness.
func (f *Injector) Fire(name string) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	s := f.sites[name]
	hook := f.hook
	f.mu.Unlock()
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if !s.spec.enabled() {
		s.mu.Unlock()
		return nil
	}
	spec := s.spec
	slow := s.rng.Float64() < spec.SlowRate
	fail := s.rng.Float64() < spec.ErrRate
	pan := s.rng.Float64() < spec.PanicRate
	s.stats.Fires++
	if slow {
		s.stats.Slows++
	}
	if fail {
		s.stats.Errs++
	}
	if pan {
		s.stats.Panics++
	}
	s.mu.Unlock()
	if hook != nil {
		if slow {
			hook(name, "slow")
		}
		if fail {
			hook(name, "err")
		}
		if pan {
			hook(name, "panic")
		}
	}
	if slow {
		f.sleep(spec.SlowFor)
	}
	if pan {
		panic(Panic{Site: name})
	}
	if fail {
		return fmt.Errorf("%w at %s", ErrInjected, name)
	}
	return nil
}

// Stats returns one site's injection counts (zero for unknown sites).
func (f *Injector) Stats(name string) Stats {
	if f == nil {
		return Stats{}
	}
	f.mu.Lock()
	s := f.sites[name]
	f.mu.Unlock()
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Summary renders per-site injection counts, sites sorted by name — the
// chaos verdict line's fault half.
func (f *Injector) Summary() string {
	if f == nil {
		return "faults: none"
	}
	f.mu.Lock()
	names := make([]string, 0, len(f.sites))
	for name := range f.sites {
		names = append(names, name)
	}
	f.mu.Unlock()
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("faults:")
	if len(names) == 0 {
		b.WriteString(" none")
	}
	for _, name := range names {
		st := f.Stats(name)
		fmt.Fprintf(&b, " %s[fires=%d slow=%d err=%d panic=%d]",
			name, st.Fires, st.Slows, st.Errs, st.Panics)
	}
	return b.String()
}

// ParsePlan decodes the CLI fault-plan syntax:
//
//	site:err=0.3,panic=0.05,slow=5ms@0.5;othersite:err=1
//
// Each site lists comma-separated faults; `slow` takes a duration and an
// optional @rate (default 1). An empty string is an empty plan.
func ParsePlan(s string) (map[string]Spec, error) {
	plan := make(map[string]Spec)
	if strings.TrimSpace(s) == "" {
		return plan, nil
	}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, faults, ok := strings.Cut(part, ":")
		if !ok || strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("fault: plan entry %q: want site:faults", part)
		}
		var spec Spec
		for _, fdef := range strings.Split(faults, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(fdef), "=")
			if !ok {
				return nil, fmt.Errorf("fault: site %q: fault %q: want key=value", name, fdef)
			}
			switch key {
			case "err", "panic":
				rate, err := strconv.ParseFloat(val, 64)
				if err != nil || rate < 0 || rate > 1 {
					return nil, fmt.Errorf("fault: site %q: %s rate %q: want a probability in [0,1]", name, key, val)
				}
				if key == "err" {
					spec.ErrRate = rate
				} else {
					spec.PanicRate = rate
				}
			case "slow":
				durStr, rateStr, hasRate := strings.Cut(val, "@")
				dur, err := time.ParseDuration(durStr)
				if err != nil || dur < 0 {
					return nil, fmt.Errorf("fault: site %q: slow duration %q: %v", name, durStr, err)
				}
				rate := 1.0
				if hasRate {
					rate, err = strconv.ParseFloat(rateStr, 64)
					if err != nil || rate < 0 || rate > 1 {
						return nil, fmt.Errorf("fault: site %q: slow rate %q: want a probability in [0,1]", name, rateStr)
					}
				}
				spec.SlowFor, spec.SlowRate = dur, rate
			default:
				return nil, fmt.Errorf("fault: site %q: unknown fault %q (want err, panic, or slow)", name, key)
			}
		}
		plan[strings.TrimSpace(name)] = spec
	}
	return plan, nil
}

// Load arms every site in a parsed plan.
func (f *Injector) Load(plan map[string]Spec) {
	if f == nil {
		return
	}
	for name, spec := range plan {
		f.Set(name, spec)
	}
}
