package fault

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Site registry: packages that embed Fire calls register their site names
// at init time, so a chaos plan naming a site that no code path ever
// fires — a typo like "bundel.load" — is rejected up front instead of
// silently arming nothing. ParsePlan itself stays permissive (tests arm
// ad-hoc sites freely); ValidatePlan is the strict CLI-facing check.
var (
	siteMu   sync.Mutex
	siteDocs = map[string]string{}
)

// RegisterSite records a fault-injection site that some code path fires,
// with a one-line doc shown in CLI help and typo suggestions. Re-registering
// a name overwrites its doc; registration never fails.
func RegisterSite(name, doc string) {
	siteMu.Lock()
	siteDocs[name] = doc
	siteMu.Unlock()
}

// KnownSites returns every registered site name, sorted.
func KnownSites() []string {
	siteMu.Lock()
	defer siteMu.Unlock()
	names := make([]string, 0, len(siteDocs))
	for name := range siteDocs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SiteDoc returns the registered one-line description for a site ("" when
// unknown).
func SiteDoc(name string) string {
	siteMu.Lock()
	defer siteMu.Unlock()
	return siteDocs[name]
}

// ValidatePlan checks that every site in a parsed plan is registered,
// returning an error naming the first unknown site and the valid choices.
func ValidatePlan(plan map[string]Spec) error {
	siteMu.Lock()
	defer siteMu.Unlock()
	unknown := make([]string, 0, 1)
	for name := range plan {
		if _, ok := siteDocs[name]; !ok {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	known := make([]string, 0, len(siteDocs))
	for name := range siteDocs {
		known = append(known, name)
	}
	sort.Strings(known)
	return fmt.Errorf("fault: unknown site %q (known sites: %s)",
		unknown[0], strings.Join(known, ", "))
}
