package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"netdrift/internal/nn"
	"netdrift/internal/obs"
)

// mallocsDuring counts heap allocations performed by f.
func mallocsDuring(f func()) uint64 {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	f()
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs
}

// shardTrainData builds a small synthetic source domain: invariant features
// drive the variant ones through a noisy linear map, scaled to [-1, 1].
func shardTrainData(n, invDim, varDim int, seed int64) (inv, vr [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	inv = make([][]float64, n)
	vr = make([][]float64, n)
	y = make([]int, n)
	w := make([][]float64, invDim)
	for i := range w {
		w[i] = make([]float64, varDim)
		for j := range w[i] {
			w[i][j] = rng.NormFloat64()
		}
	}
	for i := 0; i < n; i++ {
		inv[i] = make([]float64, invDim)
		vr[i] = make([]float64, varDim)
		for k := range inv[i] {
			inv[i][k] = 2*rng.Float64() - 1
		}
		for j := 0; j < varDim; j++ {
			var s float64
			for k := 0; k < invDim; k++ {
				s += inv[i][k] * w[k][j]
			}
			vr[i][j] = math.Tanh(s + 0.1*rng.NormFloat64())
		}
		y[i] = i % 2
	}
	return inv, vr, y
}

// epochRecorder captures the TrainHook event stream for cross-worker
// comparison. The stream is part of the determinism contract: identical at
// every worker count.
type epochRecorder struct {
	events []string
}

func (r *epochRecorder) Epoch(e obs.TrainEpoch) {
	r.events = append(r.events, fmt.Sprintf("epoch %s %d %x %x %v",
		e.Model, e.Epoch, math.Float64bits(e.GenLoss), math.Float64bits(e.DiscLoss), e.Adversarial))
}

func (r *epochRecorder) Done(d obs.TrainDone) {
	r.events = append(r.events, fmt.Sprintf("done %s %d %d", d.Model, d.Epochs, d.ConvergedEpoch))
}

// fitModel trains one reconstructor at the given worker count and returns
// the snapshots of its trained networks plus the hook event stream.
func fitModel(t *testing.T, model string, shards, workers int) ([]*nn.Snapshot, []string) {
	t.Helper()
	inv, vr, y := shardTrainData(96, 4, 3, 11)
	rec := &epochRecorder{}
	o := obs.New()
	o.Train = rec
	switch model {
	case "GAN", "NoCond":
		g := NewCGAN(GANConfig{
			Epochs: 3, BatchSize: 32, Seed: 7, Hidden: 16, NoiseDim: 4,
			Conditional: model == "GAN",
			Shards:      shards, Workers: workers, Obs: o,
		})
		if err := g.Fit(inv, vr, y, 2); err != nil {
			t.Fatalf("%s fit: %v", model, err)
		}
		return []*nn.Snapshot{nn.TakeSnapshot(g.gen), nn.TakeSnapshot(g.disc)}, rec.events
	case "VAE":
		v := NewVAE(VAEConfig{
			Epochs: 3, BatchSize: 32, Seed: 7, Hidden: 16, LatentDim: 4,
			Shards: shards, Workers: workers, Obs: o,
		})
		if err := v.Fit(inv, vr, nil, 0); err != nil {
			t.Fatalf("vae fit: %v", err)
		}
		return []*nn.Snapshot{nn.TakeSnapshot(v.encoder), nn.TakeSnapshot(v.decoder)}, rec.events
	case "VanillaAE":
		a := NewVanillaAE(VAEConfig{
			Epochs: 3, BatchSize: 32, Seed: 7, Hidden: 16,
			Shards: shards, Workers: workers, Obs: o,
		})
		if err := a.Fit(inv, vr, nil, 0); err != nil {
			t.Fatalf("ae fit: %v", err)
		}
		return []*nn.Snapshot{nn.TakeSnapshot(a.net)}, rec.events
	}
	t.Fatalf("unknown model %q", model)
	return nil, nil
}

func snapshotsEqual(t *testing.T, model string, workers int, want, got []*nn.Snapshot) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s workers=%d: %d nets, want %d", model, workers, len(got), len(want))
	}
	for ni := range want {
		w, g := want[ni], got[ni]
		if len(w.Params) != len(g.Params) {
			t.Fatalf("%s workers=%d net %d: param count %d, want %d", model, workers, ni, len(g.Params), len(w.Params))
		}
		for p := range w.Params {
			for i := range w.Params[p] {
				if math.Float64bits(w.Params[p][i]) != math.Float64bits(g.Params[p][i]) {
					t.Fatalf("%s workers=%d net %d param %d[%d]: %x, want %x (bitwise)",
						model, workers, ni, p, i,
						math.Float64bits(g.Params[p][i]), math.Float64bits(w.Params[p][i]))
				}
			}
		}
		if len(w.Extra) != len(g.Extra) {
			t.Fatalf("%s workers=%d net %d: extra count mismatch", model, workers, ni)
		}
		for e := range w.Extra {
			for s := range w.Extra[e] {
				for i := range w.Extra[e][s] {
					if math.Float64bits(w.Extra[e][s][i]) != math.Float64bits(g.Extra[e][s][i]) {
						t.Fatalf("%s workers=%d net %d extra %d/%d[%d]: running stats differ bitwise",
							model, workers, ni, e, s, i)
					}
				}
			}
		}
	}
}

// TestShardedTrainingWorkerInvariance is the cross-worker determinism
// matrix (DESIGN.md §5d): at a fixed shard count, the trained weights,
// batch-norm running statistics, and the obs hook event stream must be
// byte-identical for every worker count.
func TestShardedTrainingWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 4 models x 4 worker counts")
	}
	for _, model := range []string{"GAN", "NoCond", "VAE", "VanillaAE"} {
		model := model
		t.Run(model, func(t *testing.T) {
			refSnaps, refEvents := fitModel(t, model, 4, 1)
			for _, workers := range []int{2, 3, 7} {
				snaps, events := fitModel(t, model, 4, workers)
				snapshotsEqual(t, model, workers, refSnaps, snaps)
				if len(events) != len(refEvents) {
					t.Fatalf("workers=%d: %d hook events, want %d", workers, len(events), len(refEvents))
				}
				for i := range refEvents {
					if events[i] != refEvents[i] {
						t.Fatalf("workers=%d hook event %d:\n got %s\nwant %s", workers, i, events[i], refEvents[i])
					}
				}
			}
		})
	}
}

// TestShardedTrainingShardCountIsKey documents that the shard count — unlike
// the worker count — IS part of the reproducibility key: different shard
// counts are different (equally valid) trainings.
func TestShardedTrainingShardCountIsKey(t *testing.T) {
	a, _ := fitModel(t, "VanillaAE", 2, 1)
	b, _ := fitModel(t, "VanillaAE", 4, 1)
	for p := range a[0].Params {
		for i := range a[0].Params[p] {
			if math.Float64bits(a[0].Params[p][i]) != math.Float64bits(b[0].Params[p][i]) {
				return // diverged, as expected
			}
		}
	}
	t.Fatal("shards=2 and shards=4 produced identical weights; shard count should alter the training")
}

// TestShardedTrainingRace hammers the shard workers under the race detector
// (a no-op without -race). Small nets, many steps, maximum contention.
func TestShardedTrainingRace(t *testing.T) {
	inv, vr, y := shardTrainData(64, 3, 2, 5)
	g := NewCGAN(GANConfig{
		Epochs: 2, BatchSize: 16, Seed: 3, Hidden: 8, NoiseDim: 2,
		Conditional: true, Shards: 8, Workers: 8, Obs: obs.New(),
	})
	if err := g.Fit(inv, vr, y, 2); err != nil {
		t.Fatalf("gan fit: %v", err)
	}
	v := NewVAE(VAEConfig{
		Epochs: 2, BatchSize: 16, Seed: 3, Hidden: 8, LatentDim: 2,
		Shards: 8, Workers: 8, Obs: obs.New(),
	})
	if err := v.Fit(inv, vr, nil, 0); err != nil {
		t.Fatalf("vae fit: %v", err)
	}
	a := NewVanillaAE(VAEConfig{
		Epochs: 2, BatchSize: 16, Seed: 3, Hidden: 8,
		Shards: 8, Workers: 8, Obs: obs.New(),
	})
	if err := a.Fit(inv, vr, nil, 0); err != nil {
		t.Fatalf("ae fit: %v", err)
	}
}

// TestShardedEpochAllocs pins the per-epoch steady-state allocation budget of
// the sharded trainers: after the first Fit warms every arena, additional
// epochs must not allocate per batch (DESIGN.md §5c extends to §5d). Measured
// at Workers=1 — goroutine startup allocates by design on parallel runs.
func TestShardedEpochAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	inv, vr, y := shardTrainData(96, 4, 3, 11)

	fit := func(epochs int) uint64 {
		g := NewCGAN(GANConfig{
			Epochs: epochs, BatchSize: 32, Seed: 7, Hidden: 16, NoiseDim: 4,
			Conditional: true, Shards: 4, Workers: 1,
		})
		if err := g.Fit(inv, vr, y, 2); err != nil {
			t.Fatalf("gan fit: %v", err)
		}
		return 0
	}
	fit(1) // warm any lazy runtime state
	base := mallocsDuring(func() { fit(2) })
	more := mallocsDuring(func() { fit(6) })
	perEpoch := float64(int64(more)-int64(base)) / 4
	// The fixed budget covers MinibatchesInto's permutation reslice and the
	// obs epoch records; shard bodies themselves must be allocation free.
	if perEpoch > 64 {
		t.Fatalf("sharded gan epoch allocates %.1f objects/epoch in steady state, budget 64", perEpoch)
	}
}
