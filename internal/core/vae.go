package core

import (
	"fmt"
	"math"
	"math/rand"

	"netdrift/internal/nn"
)

// VAEConfig tunes the conditional VAE ablation reconstructor (Table II).
type VAEConfig struct {
	Epochs    int     // default 60
	BatchSize int     // default 64
	LR        float64 // default 1e-3
	LatentDim int     // default from data dimension
	Hidden    int     // default from data dimension
	KLWeight  float64 // default 0.05
	Seed      int64
}

func (c *VAEConfig) applyDefaults(numFeatures int) {
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.LatentDim == 0 {
		c.LatentDim = noiseDim(numFeatures)
	}
	if c.Hidden == 0 {
		c.Hidden = hiddenDim(numFeatures)
	}
	if c.KLWeight == 0 {
		c.KLWeight = 0.05
	}
}

// VAE is the conditional variational autoencoder ablation: an encoder maps
// [X_inv, X_var] to a latent Gaussian; the decoder reconstructs X_var from
// [X_inv, z]. At inference z is drawn from the prior, mirroring the GAN's
// noise input. The decoder architecture matches the generator (§VI-E).
type VAE struct {
	cfg VAEConfig

	encoder        *nn.Network // -> [mu, logvar]
	decoder        *nn.Network
	invDim, varDim int
	rng            *rand.Rand
	fixedZ         []float64 // pinned inference latent (mirrors the GAN's M=1)
	trained        bool
}

var _ Reconstructor = (*VAE)(nil)

// NewVAE creates an untrained conditional VAE reconstructor.
func NewVAE(cfg VAEConfig) *VAE {
	return &VAE{cfg: cfg}
}

// Name implements Reconstructor.
func (v *VAE) Name() string { return "VAE" }

// Fit trains encoder and decoder with the reparameterization trick.
func (v *VAE) Fit(inv, vr [][]float64, _ []int, _ int) error {
	if len(inv) == 0 || len(inv) != len(vr) {
		return fmt.Errorf("core: vae fit needs matching inv/var rows (%d, %d)", len(inv), len(vr))
	}
	v.invDim = len(inv[0])
	v.varDim = len(vr[0])
	v.cfg.applyDefaults(v.invDim + v.varDim)
	v.rng = rand.New(rand.NewSource(v.cfg.Seed))

	h := v.cfg.Hidden
	ld := v.cfg.LatentDim
	v.encoder = nn.NewNetwork(
		nn.NewDense(v.invDim+v.varDim, h, v.rng),
		nn.NewReLU(),
		nn.NewDense(h, 2*ld, v.rng),
	)
	v.decoder = nn.NewNetwork(
		nn.NewSkipConcat(nn.NewNetwork(
			nn.NewDense(v.invDim+ld, h, v.rng),
			nn.NewBatchNorm(h),
			nn.NewReLU(),
			nn.NewDense(h, h, v.rng),
			nn.NewBatchNorm(h),
			nn.NewReLU(),
		)),
		nn.NewDense(h+v.invDim+ld, v.varDim, v.rng),
		nn.NewTanh(),
	)
	opt := nn.NewAdam(v.cfg.LR, 1e-6)
	params := append(v.encoder.Params(), v.decoder.Params()...)

	n := len(inv)
	for epoch := 0; epoch < v.cfg.Epochs; epoch++ {
		for _, idx := range nn.Minibatches(n, v.cfg.BatchSize, v.rng) {
			bInv := nn.Gather(inv, idx)
			bVar := nn.Gather(vr, idx)
			if err := v.step(opt, params, bInv, bVar); err != nil {
				return fmt.Errorf("core: vae epoch %d: %w", epoch, err)
			}
		}
	}
	v.fixedZ = make([]float64, v.cfg.LatentDim) // prior mean
	v.trained = true
	return nil
}

func (v *VAE) step(opt nn.Optimizer, params []*nn.Param, bInv, bVar [][]float64) error {
	n := len(bInv)
	ld := v.cfg.LatentDim

	encOut := v.encoder.Forward(nn.ConcatRows(bInv, bVar), true)
	mu := make([][]float64, n)
	logvar := make([][]float64, n)
	eps := gaussianNoise(n, ld, v.rng)
	z := make([][]float64, n)
	for i := 0; i < n; i++ {
		mu[i] = encOut[i][:ld]
		logvar[i] = encOut[i][ld:]
		zi := make([]float64, ld)
		for k := 0; k < ld; k++ {
			lv := clamp(logvar[i][k], -8, 8)
			zi[k] = mu[i][k] + math.Exp(0.5*lv)*eps[i][k]
		}
		z[i] = zi
	}

	recon := v.decoder.Forward(nn.ConcatRows(bInv, z), true)
	_, gradRecon, err := nn.MSE(recon, bVar)
	if err != nil {
		return err
	}
	gradDecIn := v.decoder.Backward(gradRecon)

	// Assemble encoder-output gradient: reconstruction path through z plus
	// the KL term, normalized per latent unit like the MSE.
	klNorm := v.cfg.KLWeight / float64(n*ld)
	gradEnc := make([][]float64, n)
	for i := 0; i < n; i++ {
		ge := make([]float64, 2*ld)
		for k := 0; k < ld; k++ {
			lv := clamp(logvar[i][k], -8, 8)
			dz := gradDecIn[i][v.invDim+k]
			// dz/dmu = 1; dz/dlogvar = 0.5·exp(0.5·lv)·eps.
			ge[k] = dz + klNorm*mu[i][k]                   // dKL/dmu = mu
			ge[ld+k] = dz*0.5*math.Exp(0.5*lv)*eps[i][k] + //
				klNorm*0.5*(math.Exp(lv)-1) // dKL/dlogvar = (exp(lv)-1)/2
		}
		gradEnc[i] = ge
	}
	v.encoder.Backward(gradEnc)
	opt.Step(params)
	return nil
}

// Reconstruct decodes variant features with prior-sampled latents.
func (v *VAE) Reconstruct(inv [][]float64) ([][]float64, error) {
	if !v.trained {
		return nil, ErrNotFitted
	}
	if len(inv) == 0 {
		return nil, nil
	}
	if len(inv[0]) != v.invDim {
		return nil, fmt.Errorf("core: reconstruct width %d, trained on %d", len(inv[0]), v.invDim)
	}
	z := make([][]float64, len(inv))
	for i := range z {
		z[i] = v.fixedZ
	}
	return v.decoder.Forward(nn.ConcatRows(inv, z), false), nil
}

// VanillaAE is the deterministic autoencoder ablation: a direct regression
// from invariant to variant features with the generator's architecture but
// no noise input and no adversary (§VI-E).
type VanillaAE struct {
	cfg VAEConfig

	net            *nn.Network
	invDim, varDim int
	trained        bool
}

var _ Reconstructor = (*VanillaAE)(nil)

// NewVanillaAE creates an untrained deterministic reconstructor.
func NewVanillaAE(cfg VAEConfig) *VanillaAE {
	return &VanillaAE{cfg: cfg}
}

// Name implements Reconstructor.
func (a *VanillaAE) Name() string { return "VanillaAE" }

// Fit trains the regression network with MSE.
func (a *VanillaAE) Fit(inv, vr [][]float64, _ []int, _ int) error {
	if len(inv) == 0 || len(inv) != len(vr) {
		return fmt.Errorf("core: ae fit needs matching inv/var rows (%d, %d)", len(inv), len(vr))
	}
	a.invDim = len(inv[0])
	a.varDim = len(vr[0])
	a.cfg.applyDefaults(a.invDim + a.varDim)
	rng := rand.New(rand.NewSource(a.cfg.Seed))
	h := a.cfg.Hidden
	a.net = nn.NewNetwork(
		nn.NewSkipConcat(nn.NewNetwork(
			nn.NewDense(a.invDim, h, rng),
			nn.NewBatchNorm(h),
			nn.NewReLU(),
			nn.NewDense(h, h, rng),
			nn.NewBatchNorm(h),
			nn.NewReLU(),
		)),
		nn.NewDense(h+a.invDim, a.varDim, rng),
		nn.NewTanh(),
	)
	opt := nn.NewAdam(a.cfg.LR, 1e-6)
	params := a.net.Params()
	for epoch := 0; epoch < a.cfg.Epochs; epoch++ {
		for _, idx := range nn.Minibatches(len(inv), a.cfg.BatchSize, rng) {
			bInv := nn.Gather(inv, idx)
			bVar := nn.Gather(vr, idx)
			out := a.net.Forward(bInv, true)
			_, grad, err := nn.MSE(out, bVar)
			if err != nil {
				return fmt.Errorf("core: ae epoch %d: %w", epoch, err)
			}
			a.net.Backward(grad)
			opt.Step(params)
		}
	}
	a.trained = true
	return nil
}

// Reconstruct regresses variant features deterministically.
func (a *VanillaAE) Reconstruct(inv [][]float64) ([][]float64, error) {
	if !a.trained {
		return nil, ErrNotFitted
	}
	if len(inv) == 0 {
		return nil, nil
	}
	if len(inv[0]) != a.invDim {
		return nil, fmt.Errorf("core: reconstruct width %d, trained on %d", len(inv[0]), a.invDim)
	}
	return a.net.Forward(inv, false), nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
