package core

import (
	"fmt"
	"math"
	"math/rand"

	"netdrift/internal/nn"
	"netdrift/internal/obs"
)

// VAEConfig tunes the conditional VAE ablation reconstructor (Table II).
type VAEConfig struct {
	Epochs    int     // default 60
	BatchSize int     // default 64
	LR        float64 // default 1e-3
	LatentDim int     // default from data dimension
	Hidden    int     // default from data dimension
	KLWeight  float64 // default 0.05
	Seed      int64
	// Shards and Workers mirror GANConfig: Shards fixes the deterministic
	// gradient-shard count (0/1 = sequential path) and is part of the
	// reproducibility key; Workers only bounds the goroutines and never
	// changes the trained bits. Never serialized.
	Shards  int `json:"-"`
	Workers int `json:"-"`
	// Obs, when non-nil, receives per-epoch training losses. It never
	// changes the training math or the RNG stream. Never serialized.
	Obs *obs.Observer `json:"-"`
}

func (c *VAEConfig) applyDefaults(numFeatures int) {
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.LatentDim == 0 {
		c.LatentDim = noiseDim(numFeatures)
	}
	if c.Hidden == 0 {
		c.Hidden = hiddenDim(numFeatures)
	}
	if c.KLWeight == 0 {
		c.KLWeight = 0.05
	}
}

// VAE is the conditional variational autoencoder ablation: an encoder maps
// [X_inv, X_var] to a latent Gaussian; the decoder reconstructs X_var from
// [X_inv, z]. At inference z is drawn from the prior, mirroring the GAN's
// noise input. The decoder architecture matches the generator (§VI-E).
type VAE struct {
	cfg VAEConfig

	encoder        *nn.Network // -> [mu, logvar]
	decoder        *nn.Network
	invDim, varDim int
	rng            *rand.Rand
	fixedZ         []float64 // pinned inference latent (mirrors the GAN's M=1)
	trained        bool
	scr            vaeScratch
	shr            *vaeShards // sharded-training state; nil on the sequential path
}

// vaeScratch holds the per-batch buffers reused across the whole training
// run (steady-state epochs allocate nothing; see DESIGN.md §5c).
type vaeScratch struct {
	perm      []int
	batches   [][]int
	bInv      nn.Tensor
	bVar      nn.Tensor
	encIn     nn.Tensor // [bInv | bVar]
	eps       nn.Tensor
	z         nn.Tensor
	decIn     nn.Tensor // [bInv | z]
	gradRecon nn.Tensor
	gradEnc   nn.Tensor
}

var _ Reconstructor = (*VAE)(nil)

// NewVAE creates an untrained conditional VAE reconstructor.
func NewVAE(cfg VAEConfig) *VAE {
	return &VAE{cfg: cfg}
}

// Name implements Reconstructor.
func (v *VAE) Name() string { return "VAE" }

// Fit trains encoder and decoder with the reparameterization trick.
func (v *VAE) Fit(inv, vr [][]float64, _ []int, _ int) error {
	if len(inv) == 0 || len(inv) != len(vr) {
		return fmt.Errorf("core: vae fit needs matching inv/var rows (%d, %d)", len(inv), len(vr))
	}
	v.invDim = len(inv[0])
	v.varDim = len(vr[0])
	v.cfg.applyDefaults(v.invDim + v.varDim)
	v.rng = rand.New(rand.NewSource(v.cfg.Seed))

	h := v.cfg.Hidden
	ld := v.cfg.LatentDim
	v.encoder = nn.NewNetwork(
		nn.NewDense(v.invDim+v.varDim, h, v.rng),
		nn.NewReLU(),
		nn.NewDense(h, 2*ld, v.rng),
	)
	v.decoder = nn.NewNetwork(
		nn.NewSkipConcat(nn.NewNetwork(
			nn.NewDense(v.invDim+ld, h, v.rng),
			nn.NewBatchNorm(h),
			nn.NewReLU(),
			nn.NewDense(h, h, v.rng),
			nn.NewBatchNorm(h),
			nn.NewReLU(),
		)),
		nn.NewDense(h+v.invDim+ld, v.varDim, v.rng),
		nn.NewTanh(),
	)
	opt := nn.NewAdam(v.cfg.LR, 1e-6)
	params := append(v.encoder.Params(), v.decoder.Params()...)
	if v.cfg.Shards > 1 {
		v.shr = newVAEShards(v)
	}

	n := len(inv)
	bestLoss := math.Inf(1)
	convergedEpoch := 0
	scr := &v.scr
	for epoch := 0; epoch < v.cfg.Epochs; epoch++ {
		var lossSum float64
		var batches int
		scr.perm, scr.batches = nn.MinibatchesInto(n, v.cfg.BatchSize, v.rng, scr.perm, scr.batches)
		for _, idx := range scr.batches {
			nn.GatherInto(&scr.bInv, inv, idx)
			nn.GatherInto(&scr.bVar, vr, idx)
			var loss float64
			var err error
			if v.shr != nil {
				loss, err = v.stepSharded(opt, params)
			} else {
				loss, err = v.step(opt, params)
			}
			if err != nil {
				return fmt.Errorf("core: vae epoch %d: %w", epoch, err)
			}
			lossSum += loss
			batches++
		}
		if batches > 0 {
			mean := lossSum / float64(batches)
			if mean < bestLoss {
				bestLoss = mean
				convergedEpoch = epoch + 1
			}
			v.cfg.Obs.OnTrainEpoch(obs.TrainEpoch{Model: v.Name(), Epoch: epoch, GenLoss: mean})
		}
	}
	v.cfg.Obs.OnTrainDone(obs.TrainDone{Model: v.Name(), Epochs: v.cfg.Epochs, ConvergedEpoch: convergedEpoch})
	v.fixedZ = make([]float64, v.cfg.LatentDim) // prior mean
	v.trained = true
	return nil
}

// step runs one minibatch update and returns the reconstruction MSE (the
// monitored loss; the KL term is folded into the gradients only). The batch
// lives in v.scr (bInv/bVar), gathered by Fit.
func (v *VAE) step(opt nn.Optimizer, params []*nn.Param) (float64, error) {
	scr := &v.scr
	n := scr.bInv.Rows()
	ld := v.cfg.LatentDim

	encOut := v.encoder.ForwardT(nn.ConcatInto(&scr.encIn, &scr.bInv, &scr.bVar), true)
	gaussianNoiseInto(&scr.eps, n, ld, v.rng)
	z := scr.z.Reset(n, ld)
	for i := 0; i < n; i++ {
		enc := encOut.Row(i)
		mu, logvar := enc[:ld], enc[ld:]
		epsRow := scr.eps.Row(i)
		zi := z.Row(i)
		for k := 0; k < ld; k++ {
			lv := clamp(logvar[k], -8, 8)
			zi[k] = mu[k] + math.Exp(0.5*lv)*epsRow[k]
		}
	}

	recon := v.decoder.ForwardT(nn.ConcatInto(&scr.decIn, &scr.bInv, z), true)
	lossRecon, err := nn.MSET(recon, &scr.bVar, &scr.gradRecon)
	if err != nil {
		return 0, err
	}
	gradDecIn := v.decoder.BackwardT(&scr.gradRecon)

	// Assemble encoder-output gradient: reconstruction path through z plus
	// the KL term, normalized per latent unit like the MSE. encOut is still
	// the encoder's live output scratch — no encoder pass has run since.
	klNorm := v.cfg.KLWeight / float64(n*ld)
	gradEnc := scr.gradEnc.Reset(n, 2*ld)
	for i := 0; i < n; i++ {
		enc := encOut.Row(i)
		mu, logvar := enc[:ld], enc[ld:]
		epsRow := scr.eps.Row(i)
		dec := gradDecIn.Row(i)
		ge := gradEnc.Row(i)
		for k := 0; k < ld; k++ {
			lv := clamp(logvar[k], -8, 8)
			dz := dec[v.invDim+k]
			// dz/dmu = 1; dz/dlogvar = 0.5·exp(0.5·lv)·eps.
			ge[k] = dz + klNorm*mu[k]                      // dKL/dmu = mu
			ge[ld+k] = dz*0.5*math.Exp(0.5*lv)*epsRow[k] + //
				klNorm*0.5*(math.Exp(lv)-1) // dKL/dlogvar = (exp(lv)-1)/2
		}
	}
	v.encoder.BackwardT(gradEnc)
	opt.Step(params)
	return lossRecon, nil
}

// Reconstruct decodes variant features with prior-sampled latents.
func (v *VAE) Reconstruct(inv [][]float64) ([][]float64, error) {
	if !v.trained {
		return nil, ErrNotFitted
	}
	if len(inv) == 0 {
		return nil, nil
	}
	if len(inv[0]) != v.invDim {
		return nil, fmt.Errorf("core: reconstruct width %d, trained on %d", len(inv[0]), v.invDim)
	}
	z := make([][]float64, len(inv))
	for i := range z {
		z[i] = v.fixedZ
	}
	return v.decoder.Forward(nn.ConcatRows(inv, z), false), nil
}

// VanillaAE is the deterministic autoencoder ablation: a direct regression
// from invariant to variant features with the generator's architecture but
// no noise input and no adversary (§VI-E).
type VanillaAE struct {
	cfg VAEConfig

	net            *nn.Network
	invDim, varDim int
	trained        bool

	// training scratch, reused across batches
	perm       []int
	batches    [][]int
	bInv, bVar nn.Tensor
	grad       nn.Tensor
	shr        *aeShards // sharded-training state; nil on the sequential path
}

var _ Reconstructor = (*VanillaAE)(nil)

// NewVanillaAE creates an untrained deterministic reconstructor.
func NewVanillaAE(cfg VAEConfig) *VanillaAE {
	return &VanillaAE{cfg: cfg}
}

// Name implements Reconstructor.
func (a *VanillaAE) Name() string { return "VanillaAE" }

// Fit trains the regression network with MSE.
func (a *VanillaAE) Fit(inv, vr [][]float64, _ []int, _ int) error {
	if len(inv) == 0 || len(inv) != len(vr) {
		return fmt.Errorf("core: ae fit needs matching inv/var rows (%d, %d)", len(inv), len(vr))
	}
	a.invDim = len(inv[0])
	a.varDim = len(vr[0])
	a.cfg.applyDefaults(a.invDim + a.varDim)
	rng := rand.New(rand.NewSource(a.cfg.Seed))
	h := a.cfg.Hidden
	a.net = nn.NewNetwork(
		nn.NewSkipConcat(nn.NewNetwork(
			nn.NewDense(a.invDim, h, rng),
			nn.NewBatchNorm(h),
			nn.NewReLU(),
			nn.NewDense(h, h, rng),
			nn.NewBatchNorm(h),
			nn.NewReLU(),
		)),
		nn.NewDense(h+a.invDim, a.varDim, rng),
		nn.NewTanh(),
	)
	opt := nn.NewAdam(a.cfg.LR, 1e-6)
	params := a.net.Params()
	if a.cfg.Shards > 1 {
		a.shr = newAEShards(a)
	}
	bestLoss := math.Inf(1)
	convergedEpoch := 0
	for epoch := 0; epoch < a.cfg.Epochs; epoch++ {
		var lossSum float64
		var batches int
		a.perm, a.batches = nn.MinibatchesInto(len(inv), a.cfg.BatchSize, rng, a.perm, a.batches)
		for _, idx := range a.batches {
			nn.GatherInto(&a.bInv, inv, idx)
			nn.GatherInto(&a.bVar, vr, idx)
			var loss float64
			var err error
			if a.shr != nil {
				loss, err = a.stepSharded(opt, params)
			} else {
				out := a.net.ForwardT(&a.bInv, true)
				loss, err = nn.MSET(out, &a.bVar, &a.grad)
				if err == nil {
					a.net.BackwardT(&a.grad)
					opt.Step(params)
				}
			}
			if err != nil {
				return fmt.Errorf("core: ae epoch %d: %w", epoch, err)
			}
			lossSum += loss
			batches++
		}
		if batches > 0 {
			mean := lossSum / float64(batches)
			if mean < bestLoss {
				bestLoss = mean
				convergedEpoch = epoch + 1
			}
			a.cfg.Obs.OnTrainEpoch(obs.TrainEpoch{Model: a.Name(), Epoch: epoch, GenLoss: mean})
		}
	}
	a.cfg.Obs.OnTrainDone(obs.TrainDone{Model: a.Name(), Epochs: a.cfg.Epochs, ConvergedEpoch: convergedEpoch})
	a.trained = true
	return nil
}

// Reconstruct regresses variant features deterministically.
func (a *VanillaAE) Reconstruct(inv [][]float64) ([][]float64, error) {
	if !a.trained {
		return nil, ErrNotFitted
	}
	if len(inv) == 0 {
		return nil, nil
	}
	if len(inv[0]) != a.invDim {
		return nil, fmt.Errorf("core: reconstruct width %d, trained on %d", len(inv[0]), a.invDim)
	}
	return a.net.Forward(inv, false), nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
