package core

import (
	"fmt"
	"math"
	"math/rand"

	"netdrift/internal/dataset"
	"netdrift/internal/nn"
	"netdrift/internal/obs"
)

// GANConfig tunes the conditional GAN reconstructor. Zero values select the
// paper's hyper-parameters scaled to CPU budgets.
type GANConfig struct {
	Epochs    int // default 60 (paper trains 500 on GPU)
	BatchSize int // default 64 (paper §VI-D)
	// LR defaults to 1e-3 for both G and D: the paper uses 2e-4 (§V-C3)
	// over 500 GPU epochs; a CPU-scale epoch budget needs a higher rate to
	// cover the same optimization distance. Set 2e-4 explicitly to mirror
	// the paper's schedule.
	LR          float64
	Decay       float64 // default 1e-6 weight decay (paper §V-C3)
	NoiseDim    int     // default from data dimension (30 / 15 in the paper)
	Hidden      int     // default 256 (>200 features) or 128
	Conditional bool    // condition D on the label (FS+GAN vs FS+NoCond)
	// AnchorWeight adds a small L2 reconstruction anchor to the generator
	// loss. The paper trains the pure adversarial objective for 500 GPU
	// epochs; the anchor recovers the same reconstruction fidelity within
	// a CPU-scale epoch budget while the adversarial term still shapes the
	// conditional distribution. Set to 0 for the pure objective.
	AnchorWeight float64 // default 0.25
	Seed         int64
	// Shards fixes the gradient-shard count for deterministic data-parallel
	// training; 0 or 1 selects the single-shard sequential path. The shard
	// count — never the worker count — defines the batch math (per-shard
	// ghost batch norm, per-shard noise/dropout streams), so it is part of
	// the reproducibility key like Seed. Never serialized: persisted
	// adapters are inference-only and re-Fit rebuilds the nets anyway.
	Shards int `json:"-"`
	// Workers bounds the goroutines running the shards; <= 0 uses all CPUs.
	// Trained weights are bit-identical for every value. Never serialized.
	Workers int `json:"-"`
	// Obs, when non-nil, receives per-epoch generator/discriminator losses
	// and a fit-completion event. It never changes the training math or the
	// RNG stream, so instrumented and plain runs produce identical weights.
	// Never serialized.
	Obs *obs.Observer `json:"-"`
}

func (c *GANConfig) applyDefaults(numFeatures int) {
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Decay == 0 {
		c.Decay = 1e-6
	}
	if c.NoiseDim == 0 {
		c.NoiseDim = noiseDim(numFeatures)
	}
	if c.Hidden == 0 {
		c.Hidden = hiddenDim(numFeatures)
	}
	if c.AnchorWeight == 0 {
		c.AnchorWeight = 1
	}
}

// CGAN is the conditional GAN of §V-C: the generator reconstructs variant
// features from [invariant features, Gaussian noise]; the discriminator
// judges [invariant, variant(, one-hot label)] tuples.
type CGAN struct {
	cfg GANConfig

	gen     *nn.Network
	disc    *nn.Network
	invDim  int
	varDim  int
	rng     *rand.Rand
	fixedZ  []float64 // pinned inference noise draw (M=1, §V-C2)
	trained bool
	scr     ganScratch
	shr     *ganShards // sharded-training state; nil on the sequential path
}

// ganScratch holds the per-batch buffers reused across the whole training
// run (steady-state epochs allocate nothing; see DESIGN.md §5c).
type ganScratch struct {
	perm     []int
	batches  [][]int
	bInv     nn.Tensor
	bVar     nn.Tensor
	bLab     nn.Tensor
	noise    nn.Tensor
	genIn    nn.Tensor // [bInv | noise]; held by the generator between passes
	discIn   nn.Tensor // [bInv | var (| label)]
	targets  []float64
	grad     nn.Tensor // BCE gradient w.r.t. discriminator logits
	gradFake nn.Tensor // gradient w.r.t. the generated variant block
	gradMSE  nn.Tensor
}

var _ Reconstructor = (*CGAN)(nil)

// NewCGAN creates an untrained conditional GAN reconstructor.
func NewCGAN(cfg GANConfig) *CGAN {
	return &CGAN{cfg: cfg}
}

// Name implements Reconstructor.
func (g *CGAN) Name() string {
	if g.cfg.Conditional {
		return "GAN"
	}
	return "NoCond"
}

// Fit trains generator and discriminator adversarially on source data only.
func (g *CGAN) Fit(inv, vr [][]float64, y []int, numClasses int) error {
	if len(inv) == 0 || len(inv) != len(vr) {
		return fmt.Errorf("core: gan fit needs matching inv/var rows (%d, %d)", len(inv), len(vr))
	}
	if len(vr[0]) == 0 {
		return fmt.Errorf("core: gan fit with no variant features")
	}
	g.invDim = len(inv[0])
	g.varDim = len(vr[0])
	total := g.invDim + g.varDim
	g.cfg.applyDefaults(total)
	g.rng = rand.New(rand.NewSource(g.cfg.Seed))

	// Generator: [X_inv, Z] -> X_var, two hidden layers with batch norm and
	// ReLU, tanh output (features are scaled to [-1, 1]). CTGAN-style
	// architecture (§V-C3), with CTGAN's residual trick realized as a skip
	// concatenation so the output layer sees the conditioning input
	// directly — telemetry totals are near-linear in their constituent
	// counters and the skip makes that component trainable within a CPU
	// epoch budget.
	h := g.cfg.Hidden
	trunk := nn.NewNetwork(
		nn.NewDense(g.invDim+g.cfg.NoiseDim, h, g.rng),
		nn.NewBatchNorm(h),
		nn.NewReLU(),
		nn.NewDense(h, h, g.rng),
		nn.NewBatchNorm(h),
		nn.NewReLU(),
	)
	g.gen = nn.NewNetwork(
		nn.NewSkipConcat(trunk),
		nn.NewDense(h+g.invDim+g.cfg.NoiseDim, g.varDim, g.rng),
		nn.NewTanh(),
	)
	// Discriminator: [X_inv, X_var(, Y)] -> real/fake logit, leaky-ReLU +
	// dropout (§V-C3).
	dIn := g.invDim + g.varDim
	var oneHot [][]float64
	if g.cfg.Conditional {
		dIn += numClasses
		var err error
		oneHot, err = dataset.OneHot(y, numClasses)
		if err != nil {
			return fmt.Errorf("core: gan labels: %w", err)
		}
	}
	g.disc = nn.NewNetwork(
		nn.NewDense(dIn, h, g.rng),
		nn.NewLeakyReLU(0.2),
		nn.NewDropout(0.3, g.rng),
		nn.NewDense(h, h, g.rng),
		nn.NewLeakyReLU(0.2),
		nn.NewDropout(0.3, g.rng),
		nn.NewDense(h, 1, g.rng),
	)

	optG := nn.NewAdam(g.cfg.LR, g.cfg.Decay)
	optD := nn.NewAdam(g.cfg.LR, g.cfg.Decay)
	genParams := g.gen.Params()
	discParams := g.disc.Params()
	if g.cfg.Shards > 1 {
		g.shr = newGANShards(g)
	}

	n := len(inv)
	bestLoss := math.Inf(1)
	convergedEpoch := 0
	scr := &g.scr
	for epoch := 0; epoch < g.cfg.Epochs; epoch++ {
		var genSum, discSum float64
		var batches int
		scr.perm, scr.batches = nn.MinibatchesInto(n, g.cfg.BatchSize, g.rng, scr.perm, scr.batches)
		for _, idx := range scr.batches {
			nn.GatherInto(&scr.bInv, inv, idx)
			nn.GatherInto(&scr.bVar, vr, idx)
			if g.cfg.Conditional {
				nn.GatherInto(&scr.bLab, oneHot, idx)
			}
			var dLoss, gLoss float64
			var err error
			if g.shr != nil {
				dLoss, err = g.discStepSharded(optD, discParams)
			} else {
				dLoss, err = g.discStep(optD, discParams, genParams)
			}
			if err != nil {
				return fmt.Errorf("core: gan epoch %d: %w", epoch, err)
			}
			if g.shr != nil {
				gLoss, err = g.genStepSharded(optG, genParams)
			} else {
				gLoss, err = g.genStep(optG, genParams, discParams)
			}
			if err != nil {
				return fmt.Errorf("core: gan epoch %d: %w", epoch, err)
			}
			genSum += gLoss
			discSum += dLoss
			batches++
		}
		if batches > 0 {
			genMean := genSum / float64(batches)
			if genMean < bestLoss {
				bestLoss = genMean
				convergedEpoch = epoch + 1
			}
			g.cfg.Obs.OnTrainEpoch(obs.TrainEpoch{
				Model: g.Name(), Epoch: epoch,
				GenLoss: genMean, DiscLoss: discSum / float64(batches),
				Adversarial: true,
			})
		}
	}
	g.cfg.Obs.OnTrainDone(obs.TrainDone{
		Model: g.Name(), Epochs: g.cfg.Epochs, ConvergedEpoch: convergedEpoch,
	})
	// Pin the inference noise at the prior mode: the paper's M=1
	// Monte-Carlo estimate with a small noise vector, made reproducible so
	// repeated transformations of the same sample agree exactly.
	g.fixedZ = make([]float64, g.cfg.NoiseDim)
	g.trained = true
	return nil
}

// generate runs the generator on a batch of invariant rows (allocating
// inference path; training uses generateT).
func (g *CGAN) generate(bInv [][]float64, train bool) [][]float64 {
	z := gaussianNoise(len(bInv), g.cfg.NoiseDim, g.rng)
	return g.gen.Forward(nn.ConcatRows(bInv, z), train)
}

// generateT runs the generator on the gathered invariant batch through the
// flat path, consuming the same noise draws as generate. The result is the
// generator's output scratch, valid until the next generator pass.
func (g *CGAN) generateT(bInv *nn.Tensor, train bool) *nn.Tensor {
	scr := &g.scr
	gaussianNoiseInto(&scr.noise, bInv.Rows(), g.cfg.NoiseDim, g.rng)
	return g.gen.ForwardT(nn.ConcatInto(&scr.genIn, bInv, &scr.noise), train)
}

// discInputT assembles the discriminator input in scratch.
func (g *CGAN) discInputT(bVar *nn.Tensor) *nn.Tensor {
	scr := &g.scr
	if g.cfg.Conditional {
		return nn.ConcatInto(&scr.discIn, &scr.bInv, bVar, &scr.bLab)
	}
	return nn.ConcatInto(&scr.discIn, &scr.bInv, bVar)
}

// discStep trains D to separate real from generated variant features. It
// returns the summed real+fake BCE loss of the step. The batch lives in
// g.scr (bInv/bVar/bLab), gathered by Fit.
func (g *CGAN) discStep(opt nn.Optimizer, discParams, genParams []*nn.Param) (float64, error) {
	scr := &g.scr
	n := scr.bInv.Rows()
	// Real pass.
	realOut := g.disc.ForwardT(g.discInputT(&scr.bVar), true)
	scr.targets = constTargetsInto(scr.targets, n, 0.9) // mild label smoothing for stability
	lossReal, err := nn.BCEWithLogitsT(realOut, scr.targets, &scr.grad)
	if err != nil {
		return 0, err
	}
	g.disc.BackwardT(&scr.grad)
	// Fake pass (generator output detached: we never backward into G here;
	// the concat into discIn copies it out of the generator's scratch).
	fake := g.generateT(&scr.bInv, true)
	fakeOut := g.disc.ForwardT(g.discInputT(fake), true)
	scr.targets = constTargetsInto(scr.targets, n, 0)
	lossFake, err := nn.BCEWithLogitsT(fakeOut, scr.targets, &scr.grad)
	if err != nil {
		return 0, err
	}
	g.disc.BackwardT(&scr.grad)
	opt.Step(discParams)
	nn.ZeroGrads(genParams) // drop any gradient that leaked into G caches
	return lossReal + lossFake, nil
}

// genStep trains G to fool D (plus the optional reconstruction anchor). It
// returns the generator objective: adversarial BCE plus the weighted anchor.
func (g *CGAN) genStep(opt nn.Optimizer, genParams, discParams []*nn.Param) (float64, error) {
	scr := &g.scr
	n := scr.bInv.Rows()
	fake := g.generateT(&scr.bInv, true)
	fakeOut := g.disc.ForwardT(g.discInputT(fake), true)
	scr.targets = constTargetsInto(scr.targets, n, 1)
	loss, err := nn.BCEWithLogitsT(fakeOut, scr.targets, &scr.grad)
	if err != nil {
		return 0, err
	}
	gradDIn := g.disc.BackwardT(&scr.grad)
	// Slice out the gradient w.r.t. the generated variant block.
	gradFake := scr.gradFake.Reset(n, g.varDim)
	for i := 0; i < n; i++ {
		copy(gradFake.Row(i), gradDIn.Row(i)[g.invDim:g.invDim+g.varDim])
	}
	if g.cfg.AnchorWeight > 0 {
		// fake is still the generator's live output scratch: no generator
		// pass has run since generateT, so the anchor reads it directly.
		lossMSE, err := nn.MSET(fake, &scr.bVar, &scr.gradMSE)
		if err != nil {
			return 0, err
		}
		// nn.MSE normalizes by rows×columns while the adversarial BCE
		// normalizes by rows only; rescale by the variant dimension so the
		// anchor weight expresses a per-row balance.
		w := g.cfg.AnchorWeight * float64(g.varDim)
		loss += w * lossMSE
		gf, gm := gradFake.Data(), scr.gradMSE.Data()
		for i := range gf {
			gf[i] += w * gm[i]
		}
	}
	g.gen.BackwardT(gradFake)
	opt.Step(genParams)
	nn.ZeroGrads(discParams) // D gradients from this pass are discarded
	return loss, nil
}

// Snapshots returns deep copies of the trained networks' parameters and
// running statistics (generator first, then discriminator), for bitwise
// determinism verification across worker counts and kernel sets.
func (g *CGAN) Snapshots() []*nn.Snapshot {
	return []*nn.Snapshot{nn.TakeSnapshot(g.gen), nn.TakeSnapshot(g.disc)}
}

// Reconstruct maps invariant rows to source-like variant features using a
// single Monte-Carlo noise draw (M=1; see §V-C2 — with a small noise
// dimension the prediction is effectively deterministic).
func (g *CGAN) Reconstruct(inv [][]float64) ([][]float64, error) {
	if !g.trained {
		return nil, ErrNotFitted
	}
	if len(inv) == 0 {
		return nil, nil
	}
	if len(inv[0]) != g.invDim {
		return nil, fmt.Errorf("core: reconstruct width %d, trained on %d", len(inv[0]), g.invDim)
	}
	z := make([][]float64, len(inv))
	for i := range z {
		z[i] = g.fixedZ
	}
	return g.gen.Forward(nn.ConcatRows(inv, z), false), nil
}

// ReconstructMC is the general M-sample Monte-Carlo estimator of §V-C2:
// it averages m independent noise draws per row. The paper (and this
// implementation's default, Reconstruct) uses M = 1 because with a small
// noise dimension the draws barely move downstream predictions; this
// method exists to verify that claim and for callers who want the
// conditional-mean estimate explicitly.
func (g *CGAN) ReconstructMC(inv [][]float64, m int) ([][]float64, error) {
	if !g.trained {
		return nil, ErrNotFitted
	}
	if m < 1 {
		return nil, fmt.Errorf("core: monte-carlo sample count %d must be positive", m)
	}
	if len(inv) == 0 {
		return nil, nil
	}
	if len(inv[0]) != g.invDim {
		return nil, fmt.Errorf("core: reconstruct width %d, trained on %d", len(inv[0]), g.invDim)
	}
	acc := make([][]float64, len(inv))
	for i := range acc {
		acc[i] = make([]float64, g.varDim)
	}
	for draw := 0; draw < m; draw++ {
		out := g.generate(inv, false)
		for i := range out {
			for j, v := range out[i] {
				acc[i][j] += v
			}
		}
	}
	invM := 1 / float64(m)
	for i := range acc {
		for j := range acc[i] {
			acc[i][j] *= invM
		}
	}
	return acc, nil
}

// constTargetsInto fills (and if needed regrows) buf with n copies of v.
func constTargetsInto(buf []float64, n int, v float64) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = v
	}
	return buf
}
