package core

import (
	"math"
	"math/rand"
	"time"

	"netdrift/internal/nn"
	"netdrift/internal/par"
)

// Deterministic data-parallel training (DESIGN.md §5d).
//
// Every reconstructor trainer here shards each minibatch into a FIXED number
// of row ranges (cfg.Shards, via par.ShardBounds — a pure function of the
// batch size and the config, never of worker availability), runs
// forward/backward per shard on replica networks (nn.ShardedNet), and merges
// the per-shard gradient arenas with the fixed-shape tree reduction. All
// randomness inside a shard (generator noise, VAE eps, dropout masks) is
// reseeded per (cfg.Seed, step, phase, shard), so a shard's work is a pure
// function of its index. Consequences:
//
//   - at a fixed shard count, trained weights, per-epoch losses, and obs
//     hook event streams are bit-identical for EVERY worker count;
//   - the shard count itself is part of the reproducibility key, like the
//     seed: Shards=4 and Shards=8 are different (equally valid) trainings.
//
// Per-shard losses are computed with the *TN loss variants (gradients
// normalized by the full-batch total, raw partial sums returned) and the
// partials are folded in shard-index order, so epoch losses do not depend on
// execution order either.

// Shard-seed phase tags. Each (step, phase, shard) triple must be unique
// per random stream consumer.
const (
	phaseDiscDropout = iota
	phaseDiscNoise
	phaseGenDropout
	phaseGenNoise
	phaseVAENoise
)

// shardSeed derives the seed for one (step, phase, shard) stream with a
// chained splitmix64 finalizer (same construction as SampleSeed).
func shardSeed(base int64, step, phase, shard int) int64 {
	z := uint64(base)
	for _, k := range [3]uint64{uint64(step + 1), uint64(phase + 1), uint64(shard + 1)} {
		z += k * 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z)
}

// shardMinRows is the minimum rows per shard: batch-norm training statistics
// need at least two samples.
const shardMinRows = 2

// ganShardScratch is one shard's private buffers, reused across the run.
type ganShardScratch struct {
	bInv, bVar, bLab nn.Tensor // views into the gathered batch
	noise, genIn     nn.Tensor
	discIn           nn.Tensor
	targets, terms   []float64
	grad             nn.Tensor
	gradFake         nn.Tensor
	gradMSE          nn.Tensor
	rng              *rand.Rand
}

// ganShards is the CGAN's sharded-training state.
type ganShards struct {
	gen, disc *nn.ShardedNet
	bounds    []int
	step      int
	n         int // current batch rows
	sh        []ganShardScratch
	dReal     []float64
	dFake     []float64
	gBCE      []float64
	gMSE      []float64
	errs      []error
	// Stable shard bodies, created once so the sequential ForEach fast path
	// stays allocation free.
	discBody func(int)
	genBody  func(int)
	zeroDisc func(int)
}

func newGANShards(g *CGAN) *ganShards {
	k := g.cfg.Shards
	shr := &ganShards{
		gen:   nn.NewSharded(g.gen, k),
		disc:  nn.NewSharded(g.disc, k),
		sh:    make([]ganShardScratch, k),
		dReal: make([]float64, k),
		dFake: make([]float64, k),
		gBCE:  make([]float64, k),
		gMSE:  make([]float64, k),
		errs:  make([]error, k),
	}
	for i := range shr.sh {
		shr.sh[i].rng = nn.NewShardRand(0) // reseeded per (step, phase, shard)
	}
	shr.discBody = g.discShardBody
	shr.genBody = g.genShardBody
	shr.zeroDisc = func(s int) { nn.ZeroGrads(shr.disc.Params(s)) }
	return shr
}

// shardViews points shard s's batch views at its row range.
func (g *CGAN) shardViews(sh *ganShardScratch, lo, hi int) {
	g.scr.bInv.ViewRows(lo, hi, &sh.bInv)
	g.scr.bVar.ViewRows(lo, hi, &sh.bVar)
	if g.cfg.Conditional {
		g.scr.bLab.ViewRows(lo, hi, &sh.bLab)
	}
}

// discShardInput assembles shard-local discriminator input.
func (g *CGAN) discShardInput(sh *ganShardScratch, bVar *nn.Tensor) *nn.Tensor {
	if g.cfg.Conditional {
		return nn.ConcatInto(&sh.discIn, &sh.bInv, bVar, &sh.bLab)
	}
	return nn.ConcatInto(&sh.discIn, &sh.bInv, bVar)
}

// discShardBody is shard s of the discriminator step: real and fake passes
// accumulate into replica s's gradient arena.
func (g *CGAN) discShardBody(s int) {
	t0 := time.Now()
	shr := g.shr
	sh := &shr.sh[s]
	shr.errs[s] = nil
	lo, hi := shr.bounds[s], shr.bounds[s+1]
	rows := hi - lo
	total := float64(shr.n)
	g.shardViews(sh, lo, hi)
	dn, gn := shr.disc.Net(s), shr.gen.Net(s)
	shr.disc.SeedDropouts(s, shardSeed(g.cfg.Seed, shr.step, phaseDiscDropout, s))
	sh.terms = constTargetsInto(sh.terms, rows, 0)
	// Real pass.
	realOut := nn.LayerForwardT(dn, g.discShardInput(sh, &sh.bVar), true)
	sh.targets = constTargetsInto(sh.targets, rows, 0.9)
	lossReal, err := nn.BCEWithLogitsTN(realOut, sh.targets, &sh.grad, sh.terms, total)
	if err != nil {
		shr.errs[s] = err
		return
	}
	nn.LayerBackwardT(dn, &sh.grad)
	// Fake pass (generator output detached, as in the sequential path).
	sh.rng.Seed(shardSeed(g.cfg.Seed, shr.step, phaseDiscNoise, s))
	gaussianNoiseInto(&sh.noise, rows, g.cfg.NoiseDim, sh.rng)
	fake := nn.LayerForwardT(gn, nn.ConcatInto(&sh.genIn, &sh.bInv, &sh.noise), true)
	fakeOut := nn.LayerForwardT(dn, g.discShardInput(sh, fake), true)
	sh.targets = constTargetsInto(sh.targets, rows, 0)
	lossFake, err := nn.BCEWithLogitsTN(fakeOut, sh.targets, &sh.grad, sh.terms, total)
	if err != nil {
		shr.errs[s] = err
		return
	}
	nn.LayerBackwardT(dn, &sh.grad)
	shr.dReal[s], shr.dFake[s] = lossReal, lossFake
	g.cfg.Obs.OnTrainShard(g.Name(), time.Since(t0).Seconds())
}

// genShardBody is shard s of the generator step.
func (g *CGAN) genShardBody(s int) {
	t0 := time.Now()
	shr := g.shr
	sh := &shr.sh[s]
	shr.errs[s] = nil
	shr.gMSE[s] = 0
	lo, hi := shr.bounds[s], shr.bounds[s+1]
	rows := hi - lo
	total := float64(shr.n)
	g.shardViews(sh, lo, hi)
	dn, gn := shr.disc.Net(s), shr.gen.Net(s)
	shr.disc.SeedDropouts(s, shardSeed(g.cfg.Seed, shr.step, phaseGenDropout, s))
	sh.rng.Seed(shardSeed(g.cfg.Seed, shr.step, phaseGenNoise, s))
	gaussianNoiseInto(&sh.noise, rows, g.cfg.NoiseDim, sh.rng)
	fake := nn.LayerForwardT(gn, nn.ConcatInto(&sh.genIn, &sh.bInv, &sh.noise), true)
	fakeOut := nn.LayerForwardT(dn, g.discShardInput(sh, fake), true)
	sh.targets = constTargetsInto(sh.targets, rows, 1)
	lossBCE, err := nn.BCEWithLogitsTN(fakeOut, sh.targets, &sh.grad, sh.terms, total)
	if err != nil {
		shr.errs[s] = err
		return
	}
	gradDIn := nn.LayerBackwardT(dn, &sh.grad)
	gradFake := sh.gradFake.Reset(rows, g.varDim)
	for i := 0; i < rows; i++ {
		copy(gradFake.Row(i), gradDIn.Row(i)[g.invDim:g.invDim+g.varDim])
	}
	if g.cfg.AnchorWeight > 0 {
		lossMSE, err := nn.MSETN(fake, &sh.bVar, &sh.gradMSE, float64(shr.n*g.varDim))
		if err != nil {
			shr.errs[s] = err
			return
		}
		w := g.cfg.AnchorWeight * float64(g.varDim)
		gf, gm := gradFake.Data(), sh.gradMSE.Data()
		for i := range gf {
			gf[i] += w * gm[i]
		}
		shr.gMSE[s] = lossMSE
	}
	nn.LayerBackwardT(gn, gradFake)
	shr.gBCE[s] = lossBCE
	g.cfg.Obs.OnTrainShard(g.Name(), time.Since(t0).Seconds())
}

// discStepSharded is the data-parallel discriminator step. It advances the
// step counter (one increment per batch; the generator step that follows
// shares it, distinguished by phase tags).
func (g *CGAN) discStepSharded(opt nn.Optimizer, discParams []*nn.Param) (float64, error) {
	shr := g.shr
	shr.step++
	shr.n = g.scr.bInv.Rows()
	shr.bounds = par.ShardBounds(shr.bounds, shr.n, g.cfg.Shards, shardMinRows)
	eff := len(shr.bounds) - 1
	par.ForEach(g.cfg.Workers, eff, shr.discBody)
	for s := 0; s < eff; s++ {
		if shr.errs[s] != nil {
			return 0, shr.errs[s]
		}
	}
	shr.disc.ReduceGrads(g.cfg.Workers)
	opt.Step(discParams) // zeroes the canonical grads it consumed
	// The fake pass ran the generator replicas' batch norms with deferred
	// statistics: fold them into the canonical generator, in shard order.
	shr.gen.FoldBatchStats()
	var loss float64
	for s := 0; s < eff; s++ {
		loss += shr.dReal[s] + shr.dFake[s]
	}
	return loss / float64(shr.n), nil
}

// genStepSharded is the data-parallel generator step for the batch the
// preceding discStepSharded processed.
func (g *CGAN) genStepSharded(opt nn.Optimizer, genParams []*nn.Param) (float64, error) {
	shr := g.shr
	eff := len(shr.bounds) - 1
	par.ForEach(g.cfg.Workers, eff, shr.genBody)
	for s := 0; s < eff; s++ {
		if shr.errs[s] != nil {
			return 0, shr.errs[s]
		}
	}
	shr.gen.ReduceGrads(g.cfg.Workers)
	opt.Step(genParams)
	shr.gen.FoldBatchStats()
	// Backing the adversarial gradient through D leaked gradients into the
	// disc arenas of every shard that ran; drop them (the sequential path's
	// ZeroGrads(discParams), per arena).
	par.ForEach(g.cfg.Workers, eff, shr.zeroDisc)
	var bce, mse float64
	for s := 0; s < eff; s++ {
		bce += shr.gBCE[s]
		mse += shr.gMSE[s]
	}
	loss := bce / float64(shr.n)
	if g.cfg.AnchorWeight > 0 {
		w := g.cfg.AnchorWeight * float64(g.varDim)
		loss += w * (mse / float64(shr.n*g.varDim))
	}
	return loss, nil
}

// vaeShardScratch is one VAE shard's private buffers.
type vaeShardScratch struct {
	bInv, bVar nn.Tensor // views
	encIn      nn.Tensor
	eps, z     nn.Tensor
	decIn      nn.Tensor
	gradRecon  nn.Tensor
	gradEnc    nn.Tensor
	rng        *rand.Rand
}

// vaeShards is the VAE's sharded-training state.
type vaeShards struct {
	enc, dec *nn.ShardedNet
	bounds   []int
	step     int
	n        int
	sh       []vaeShardScratch
	recon    []float64
	errs     []error
	body     func(int)
}

func newVAEShards(v *VAE) *vaeShards {
	k := v.cfg.Shards
	shr := &vaeShards{
		enc:   nn.NewSharded(v.encoder, k),
		dec:   nn.NewSharded(v.decoder, k),
		sh:    make([]vaeShardScratch, k),
		recon: make([]float64, k),
		errs:  make([]error, k),
	}
	for i := range shr.sh {
		shr.sh[i].rng = nn.NewShardRand(0)
	}
	shr.body = v.shardBody
	return shr
}

// shardBody is shard s of one VAE minibatch update.
func (v *VAE) shardBody(s int) {
	t0 := time.Now()
	shr := v.shr
	sh := &shr.sh[s]
	shr.errs[s] = nil
	lo, hi := shr.bounds[s], shr.bounds[s+1]
	rows := hi - lo
	ld := v.cfg.LatentDim
	v.scr.bInv.ViewRows(lo, hi, &sh.bInv)
	v.scr.bVar.ViewRows(lo, hi, &sh.bVar)

	encOut := nn.LayerForwardT(shr.enc.Net(s), nn.ConcatInto(&sh.encIn, &sh.bInv, &sh.bVar), true)
	sh.rng.Seed(shardSeed(v.cfg.Seed, shr.step, phaseVAENoise, s))
	gaussianNoiseInto(&sh.eps, rows, ld, sh.rng)
	z := sh.z.Reset(rows, ld)
	for i := 0; i < rows; i++ {
		enc := encOut.Row(i)
		mu, logvar := enc[:ld], enc[ld:]
		epsRow := sh.eps.Row(i)
		zi := z.Row(i)
		for k := 0; k < ld; k++ {
			lv := clamp(logvar[k], -8, 8)
			zi[k] = mu[k] + math.Exp(0.5*lv)*epsRow[k]
		}
	}

	recon := nn.LayerForwardT(shr.dec.Net(s), nn.ConcatInto(&sh.decIn, &sh.bInv, z), true)
	lossRecon, err := nn.MSETN(recon, &sh.bVar, &sh.gradRecon, float64(shr.n*v.varDim))
	if err != nil {
		shr.errs[s] = err
		return
	}
	gradDecIn := nn.LayerBackwardT(shr.dec.Net(s), &sh.gradRecon)

	// KL term normalized by the FULL batch, like the sequential path.
	klNorm := v.cfg.KLWeight / float64(shr.n*ld)
	gradEnc := sh.gradEnc.Reset(rows, 2*ld)
	for i := 0; i < rows; i++ {
		enc := encOut.Row(i)
		mu, logvar := enc[:ld], enc[ld:]
		epsRow := sh.eps.Row(i)
		dec := gradDecIn.Row(i)
		ge := gradEnc.Row(i)
		for k := 0; k < ld; k++ {
			lv := clamp(logvar[k], -8, 8)
			dz := dec[v.invDim+k]
			ge[k] = dz + klNorm*mu[k]
			ge[ld+k] = dz*0.5*math.Exp(0.5*lv)*epsRow[k] +
				klNorm*0.5*(math.Exp(lv)-1)
		}
	}
	nn.LayerBackwardT(shr.enc.Net(s), gradEnc)
	shr.recon[s] = lossRecon
	v.cfg.Obs.OnTrainShard(v.Name(), time.Since(t0).Seconds())
}

// stepSharded is the data-parallel VAE minibatch update.
func (v *VAE) stepSharded(opt nn.Optimizer, params []*nn.Param) (float64, error) {
	shr := v.shr
	shr.step++
	shr.n = v.scr.bInv.Rows()
	shr.bounds = par.ShardBounds(shr.bounds, shr.n, v.cfg.Shards, shardMinRows)
	eff := len(shr.bounds) - 1
	par.ForEach(v.cfg.Workers, eff, shr.body)
	for s := 0; s < eff; s++ {
		if shr.errs[s] != nil {
			return 0, shr.errs[s]
		}
	}
	shr.enc.ReduceGrads(v.cfg.Workers)
	shr.dec.ReduceGrads(v.cfg.Workers)
	opt.Step(params)
	shr.dec.FoldBatchStats() // encoder has no batch norms
	var loss float64
	for s := 0; s < eff; s++ {
		loss += shr.recon[s]
	}
	return loss / float64(shr.n*v.varDim), nil
}

// aeShardScratch is one VanillaAE shard's private buffers.
type aeShardScratch struct {
	bInv, bVar nn.Tensor // views
	grad       nn.Tensor
}

// aeShards is the VanillaAE's sharded-training state.
type aeShards struct {
	net    *nn.ShardedNet
	bounds []int
	n      int
	sh     []aeShardScratch
	loss   []float64
	errs   []error
	body   func(int)
}

func newAEShards(a *VanillaAE) *aeShards {
	k := a.cfg.Shards
	shr := &aeShards{
		net:  nn.NewSharded(a.net, k),
		sh:   make([]aeShardScratch, k),
		loss: make([]float64, k),
		errs: make([]error, k),
	}
	shr.body = a.shardBody
	return shr
}

// shardBody is shard s of one VanillaAE minibatch update. The network is
// deterministic given its input (no noise, no dropout), so no reseeding is
// needed; batch-norm statistics still defer and fold in shard order.
func (a *VanillaAE) shardBody(s int) {
	t0 := time.Now()
	shr := a.shr
	sh := &shr.sh[s]
	shr.errs[s] = nil
	lo, hi := shr.bounds[s], shr.bounds[s+1]
	a.bInv.ViewRows(lo, hi, &sh.bInv)
	a.bVar.ViewRows(lo, hi, &sh.bVar)
	out := nn.LayerForwardT(shr.net.Net(s), &sh.bInv, true)
	loss, err := nn.MSETN(out, &sh.bVar, &sh.grad, float64(shr.n*a.varDim))
	if err != nil {
		shr.errs[s] = err
		return
	}
	nn.LayerBackwardT(shr.net.Net(s), &sh.grad)
	shr.loss[s] = loss
	a.cfg.Obs.OnTrainShard(a.Name(), time.Since(t0).Seconds())
}

// stepSharded is the data-parallel VanillaAE minibatch update.
func (a *VanillaAE) stepSharded(opt nn.Optimizer, params []*nn.Param) (float64, error) {
	shr := a.shr
	shr.n = a.bInv.Rows()
	shr.bounds = par.ShardBounds(shr.bounds, shr.n, a.cfg.Shards, shardMinRows)
	eff := len(shr.bounds) - 1
	par.ForEach(a.cfg.Workers, eff, shr.body)
	for s := 0; s < eff; s++ {
		if shr.errs[s] != nil {
			return 0, shr.errs[s]
		}
	}
	shr.net.ReduceGrads(a.cfg.Workers)
	opt.Step(params)
	shr.net.FoldBatchStats()
	var loss float64
	for s := 0; s < eff; s++ {
		loss += shr.loss[s]
	}
	return loss / float64(shr.n*a.varDim), nil
}
