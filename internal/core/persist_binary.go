package core

import (
	"fmt"

	"netdrift/internal/binenc"
	"netdrift/internal/nn"
)

// Binary adapter persistence: the flat little-endian counterpart of the
// JSON blob in persist.go. Both codecs serialize the identical blob and
// rebuild through the same adapterFromBlob path, so loading a binary
// artifact yields a bit-identical adapter — pinned by the cross-format
// golden test in internal/serve.
//
// Layout (little-endian; slices are u32-count-prefixed, see binenc):
//
//	u16 version
//	u8  mode, u8 recon
//	f64 mins[], f64 maxs[]
//	i32 variant[], i32 invariant[]
//	FS config:  f64 alpha, f64 exonerationAlpha, u32 maxOrder,
//	            u32 maxNeighbors, u8 marginalOnly
//	u8 hasGAN; if set:
//	  GAN config: u32 epochs, u32 batchSize, f64 lr, f64 decay,
//	              u32 noiseDim, u32 hidden, u8 conditional,
//	              f64 anchorWeight, i64 seed
//	  u32 invDim, u32 varDim, f64 fixedZ[], snapshot (nn.AppendSnapshot)
//
// Scaler bounds, fixedZ, and every snapshot weight are finiteness-checked
// on decode; dims are validated by the existing rebuild path.

// AppendBinary appends the adapter's binary encoding to dst. Like Save it
// requires a fitted adapter in ModeFS, or ModeFSRecon with a GAN-family
// reconstructor.
func (a *Adapter) AppendBinary(dst []byte) ([]byte, error) {
	blob, err := a.saveBlob()
	if err != nil {
		return dst, err
	}
	dst = binenc.AppendU16(dst, uint16(blob.Version))
	dst = binenc.AppendU8(dst, uint8(blob.Mode))
	dst = binenc.AppendU8(dst, uint8(blob.Recon))
	dst = binenc.AppendF64s(dst, blob.Mins)
	dst = binenc.AppendF64s(dst, blob.Maxs)
	dst = binenc.AppendI32s(dst, blob.Variant)
	dst = binenc.AppendI32s(dst, blob.Invariant)
	dst = binenc.AppendF64(dst, blob.FS.Alpha)
	dst = binenc.AppendF64(dst, blob.FS.ExonerationAlpha)
	dst = binenc.AppendU32(dst, uint32(blob.FS.MaxOrder))
	dst = binenc.AppendU32(dst, uint32(blob.FS.MaxNeighbors))
	dst = binenc.AppendBool(dst, blob.FS.MarginalOnly)
	dst = binenc.AppendBool(dst, blob.GAN != nil)
	if g := blob.GAN; g != nil {
		dst = binenc.AppendU32(dst, uint32(g.Config.Epochs))
		dst = binenc.AppendU32(dst, uint32(g.Config.BatchSize))
		dst = binenc.AppendF64(dst, g.Config.LR)
		dst = binenc.AppendF64(dst, g.Config.Decay)
		dst = binenc.AppendU32(dst, uint32(g.Config.NoiseDim))
		dst = binenc.AppendU32(dst, uint32(g.Config.Hidden))
		dst = binenc.AppendBool(dst, g.Config.Conditional)
		dst = binenc.AppendF64(dst, g.Config.AnchorWeight)
		dst = binenc.AppendI64(dst, g.Config.Seed)
		dst = binenc.AppendU32(dst, uint32(g.InvDim))
		dst = binenc.AppendU32(dst, uint32(g.VarDim))
		dst = binenc.AppendF64s(dst, g.FixedZ)
		dst = nn.AppendSnapshot(dst, g.Snapshot)
	}
	return dst, nil
}

// LoadAdapterBinary decodes an adapter written by AppendBinary from r.
// Malformed input (truncation, overflowing counts, non-finite weights)
// fails with a typed error and never panics.
func LoadAdapterBinary(r *binenc.Reader) (*Adapter, error) {
	var blob adapterBlob
	blob.Version = int(r.U16())
	blob.Mode = Mode(r.U8())
	blob.Recon = ReconKind(r.U8())
	blob.Mins = r.FiniteF64s()
	blob.Maxs = r.FiniteF64s()
	blob.Variant = r.I32s()
	blob.Invariant = r.I32s()
	blob.FS.Alpha = r.F64()
	blob.FS.ExonerationAlpha = r.F64()
	blob.FS.MaxOrder = int(r.U32())
	blob.FS.MaxNeighbors = int(r.U32())
	blob.FS.MarginalOnly = r.Bool()
	if r.Bool() && r.Err() == nil {
		g := &ganBlob{}
		g.Config.Epochs = int(r.U32())
		g.Config.BatchSize = int(r.U32())
		g.Config.LR = r.F64()
		g.Config.Decay = r.F64()
		g.Config.NoiseDim = int(r.U32())
		g.Config.Hidden = int(r.U32())
		g.Config.Conditional = r.Bool()
		g.Config.AnchorWeight = r.F64()
		g.Config.Seed = r.I64()
		g.InvDim = int(r.U32())
		g.VarDim = int(r.U32())
		g.FixedZ = r.FiniteF64s()
		snap, err := nn.ReadSnapshot(r)
		if err != nil {
			return nil, fmt.Errorf("core: decode adapter: %w", err)
		}
		g.Snapshot = snap
		if err := validateGANBlobDims(g); err != nil {
			return nil, err
		}
		blob.GAN = g
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decode adapter: %w", err)
	}
	return adapterFromBlob(&blob)
}

// maxPersistDim bounds every network dimension a binary blob may declare.
// Real generators are orders of magnitude smaller; the cap exists so a
// hostile header cannot demand a multi-gigabyte rebuild.
const maxPersistDim = 1 << 20

// validateGANBlobDims cross-checks the declared generator dims against the
// decoded snapshot BEFORE any network of that shape is allocated: the
// snapshot's weight slices are bounded by the payload that carried them,
// so requiring each big weight matrix to match its dims means a rebuild
// can never allocate more than the input itself paid for. The expected
// shapes mirror rebuildGAN's architecture exactly (param order: trunk
// Dense w/b, BatchNorm γ/β, Dense w/b, BatchNorm γ/β, then the output
// Dense w/b) — the cross-format golden test breaks loudly if the two ever
// drift apart.
func validateGANBlobDims(g *ganBlob) error {
	h := g.Config.Hidden
	in := g.InvDim + g.Config.NoiseDim
	switch {
	case g.InvDim <= 0 || g.InvDim > maxPersistDim,
		g.VarDim <= 0 || g.VarDim > maxPersistDim,
		g.Config.NoiseDim <= 0 || g.Config.NoiseDim > maxPersistDim,
		h <= 0 || h > maxPersistDim:
		return fmt.Errorf("core: decode adapter: GAN dims %dx%d hidden=%d noise=%d out of range",
			g.InvDim, g.VarDim, h, g.Config.NoiseDim)
	}
	p := g.Snapshot.Params
	if len(p) != 10 ||
		len(p[0]) != in*h || len(p[4]) != h*h || len(p[8]) != (h+in)*g.VarDim {
		return fmt.Errorf("core: decode adapter: generator snapshot shape does not match declared dims")
	}
	return nil
}
