package core

import (
	"math/rand"
	"testing"
)

// benchBlocks synthesizes an invariant/variant split with a weak linear
// relationship so one GAN epoch does representative work.
func benchBlocks(n, dInv, dVar int, seed int64) (inv, vr [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	inv = make([][]float64, n)
	vr = make([][]float64, n)
	y = make([]int, n)
	for i := 0; i < n; i++ {
		inv[i] = make([]float64, dInv)
		for j := range inv[i] {
			inv[i][j] = rng.NormFloat64()
		}
		vr[i] = make([]float64, dVar)
		for j := range vr[i] {
			vr[i][j] = 0.5*inv[i][j%dInv] + 0.3*rng.NormFloat64()
		}
		y[i] = i % 4
	}
	return inv, vr, y
}

// BenchmarkGANEpoch times one conditional-GAN training epoch — the
// dominant cost of Adapter.Fit in ModeFSRecon:
//
//	go test -bench GANEpoch -benchtime 1x ./internal/core
func BenchmarkGANEpoch(b *testing.B) {
	inv, vr, y := benchBlocks(512, 24, 12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewCGAN(GANConfig{Epochs: 1, Seed: int64(i) + 1})
		if err := g.Fit(inv, vr, y, 4); err != nil {
			b.Fatal(err)
		}
	}
}
