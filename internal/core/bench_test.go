package core

import (
	"math/rand"
	"testing"

	"netdrift/internal/dataset"
)

// benchBlocks synthesizes an invariant/variant split with a weak linear
// relationship so one GAN epoch does representative work.
func benchBlocks(n, dInv, dVar int, seed int64) (inv, vr [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	inv = make([][]float64, n)
	vr = make([][]float64, n)
	y = make([]int, n)
	for i := 0; i < n; i++ {
		inv[i] = make([]float64, dInv)
		for j := range inv[i] {
			inv[i][j] = rng.NormFloat64()
		}
		vr[i] = make([]float64, dVar)
		for j := range vr[i] {
			vr[i][j] = 0.5*inv[i][j%dInv] + 0.3*rng.NormFloat64()
		}
		y[i] = i % 4
	}
	return inv, vr, y
}

// BenchmarkGANEpoch times one conditional-GAN training epoch — the
// dominant cost of Adapter.Fit in ModeFSRecon:
//
//	go test -bench GANEpoch -benchtime 1x ./internal/core
func BenchmarkGANEpoch(b *testing.B) {
	inv, vr, y := benchBlocks(512, 24, 12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewCGAN(GANConfig{Epochs: 1, Seed: int64(i) + 1})
		if err := g.Fit(inv, vr, y, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// benchServeAdapter fits a full-width FS+GAN adapter on synthetic data
// shaped like the 5GC dataset (hundreds of mostly-invariant features) so
// the serving benchmarks below exercise the real generator geometry.
func benchServeAdapter(b *testing.B) (*Adapter, [][]float64) {
	rng := rand.New(rand.NewSource(1))
	const n, d = 500, 442
	mkRows := func(n int, drift float64) [][]float64 {
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
				if j < 50 {
					rows[i][j] += drift
				}
			}
		}
		return rows
	}
	src := &dataset.Dataset{X: mkRows(n, 0), Y: make([]int, n)}
	sup := &dataset.Dataset{X: mkRows(40, 4), Y: make([]int, 40)}
	for i := range src.Y {
		src.Y[i] = i % 2
	}
	ad := NewAdapter(AdapterConfig{Mode: ModeFSRecon, Recon: ReconGAN, GAN: GANConfig{Epochs: 2}, Seed: 1})
	if err := ad.Fit(src, sup); err != nil {
		b.Fatal(err)
	}
	return ad, src.X[:32]
}

// BenchmarkAdaptBatch32 is the serving hot path: one AdaptBatch call over
// a 32-row micro-batch with scratch reuse (the coalescer's steady state).
func BenchmarkAdaptBatch32(b *testing.B) {
	ad, rows := benchServeAdapter(b)
	var scr AdaptScratch
	seeds := make([]int64, len(rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ad.AdaptBatch(rows, seeds, &scr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptPerRowLegacy serves the same 32 rows the pre-batching way:
// one TransformTarget call per row — the baseline the serve stage of
// BENCH_parallel.json compares against.
func BenchmarkAdaptPerRowLegacy(b *testing.B) {
	ad, rows := benchServeAdapter(b)
	one := make([][]float64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rows {
			one[0] = r
			if _, err := ad.TransformTarget(one); err != nil {
				b.Fatal(err)
			}
		}
	}
}
