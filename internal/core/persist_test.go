package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestAdapterSaveLoadRoundTripFSRecon(t *testing.T) {
	src := driftToy(600, false, 41)
	sup := driftToy(20, true, 42)
	ad := NewAdapter(AdapterConfig{
		Mode:  ModeFSRecon,
		Recon: ReconGAN,
		GAN:   GANConfig{Epochs: 15},
		Seed:  43,
	})
	if err := ad.Fit(src, sup); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ad.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAdapter(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Feature split preserved.
	if got, want := loaded.VariantFeatures(), ad.VariantFeatures(); !equalInts(got, want) {
		t.Errorf("variant = %v; want %v", got, want)
	}
	// Transform output must match bit-for-bit (pinned noise, restored
	// weights, restored batch-norm statistics).
	test := driftToy(50, true, 44)
	a, err := ad.TransformTarget(test.X)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.TransformTarget(test.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("transform mismatch at [%d][%d]: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
	// TrainingData also works on the loaded adapter.
	train, err := loaded.TrainingData(src)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumFeatures() != src.NumFeatures() {
		t.Errorf("training width = %d; want %d", train.NumFeatures(), src.NumFeatures())
	}
}

func TestAdapterSaveLoadRoundTripFS(t *testing.T) {
	src := driftToy(400, false, 45)
	sup := driftToy(20, true, 46)
	ad := NewAdapter(AdapterConfig{Mode: ModeFS, Seed: 47})
	if err := ad.Fit(src, sup); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ad.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAdapter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	test := driftToy(30, true, 48)
	a, _ := ad.TransformTarget(test.X)
	b, _ := loaded.TransformTarget(test.X)
	if len(a) != len(b) || len(a[0]) != len(b[0]) {
		t.Fatal("FS transform shape mismatch after load")
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("FS transform values changed after load")
			}
		}
	}
}

func TestAdapterSaveUnfitted(t *testing.T) {
	ad := NewAdapter(AdapterConfig{})
	var buf bytes.Buffer
	if err := ad.Save(&buf); !errors.Is(err, ErrNotFitted) {
		t.Errorf("err = %v; want ErrNotFitted", err)
	}
}

func TestAdapterSaveUnsupportedReconstructor(t *testing.T) {
	src := driftToy(300, false, 49)
	sup := driftToy(20, true, 50)
	ad := NewAdapter(AdapterConfig{
		Mode:  ModeFSRecon,
		Recon: ReconVAE,
		VAE:   VAEConfig{Epochs: 2},
		Seed:  51,
	})
	if err := ad.Fit(src, sup); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ad.Save(&buf); !errors.Is(err, ErrUnsupportedPersist) {
		t.Errorf("err = %v; want ErrUnsupportedPersist", err)
	}
}

func TestLoadAdapterErrors(t *testing.T) {
	if _, err := LoadAdapter(strings.NewReader("not json")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := LoadAdapter(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("expected version error")
	}
	if _, err := LoadAdapter(strings.NewReader(`{"version":1,"mode":77}`)); err == nil {
		t.Error("expected mode error")
	}
	if _, err := LoadAdapter(strings.NewReader(`{"version":1,"mode":1,"mins":[1],"maxs":[]}`)); err == nil {
		t.Error("expected bounds error")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
