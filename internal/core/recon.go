package core

import (
	"math/rand"

	"netdrift/internal/nn"
)

// Reconstructor learns, on source-domain data only, to reconstruct the
// domain-variant features from the domain-invariant features. At inference
// it maps a target sample's variant features back onto the source
// distribution (paper §V-C).
type Reconstructor interface {
	// Fit trains on scaled source rows: inv/vr are the invariant/variant
	// column groups, y the integer labels (used only by label-conditioned
	// discriminators), numClasses the label arity.
	Fit(inv, vr [][]float64, y []int, numClasses int) error
	// Reconstruct produces source-like variant features for each invariant
	// row.
	Reconstruct(inv [][]float64) ([][]float64, error)
	// Name identifies the reconstruction strategy for reports.
	Name() string
}

// ReconKind selects the reconstruction strategy (Table II ablation).
type ReconKind int

// Reconstruction strategies.
const (
	ReconGAN       ReconKind = iota + 1 // conditional GAN (FS+GAN, the paper's method)
	ReconGANNoCond                      // GAN without label conditioning (FS+NoCond)
	ReconVAE                            // conditional VAE ablation (FS+VAE)
	ReconVanillaAE                      // deterministic autoencoder ablation (FS+VanillaAE)
)

// String implements fmt.Stringer.
func (k ReconKind) String() string {
	switch k {
	case ReconGAN:
		return "GAN"
	case ReconGANNoCond:
		return "NoCond"
	case ReconVAE:
		return "VAE"
	case ReconVanillaAE:
		return "VanillaAE"
	default:
		return "ReconKind(?)"
	}
}

// noiseDim picks the generator noise size from the data dimensionality,
// matching the paper's choices (30 for the 442-feature 5GC dataset, 15 for
// the 116-feature 5GIPC dataset): small relative to the data dimension so
// that M=1 Monte-Carlo inference is stable (§V-C2).
func noiseDim(numFeatures int) int {
	n := numFeatures / 15
	if n < 4 {
		n = 4
	}
	if n > 48 {
		n = 48
	}
	return n
}

// hiddenDim picks the generator/discriminator width from the data
// dimensionality (256 for 5GC-scale, 128 for 5GIPC-scale in the paper).
func hiddenDim(numFeatures int) int {
	if numFeatures > 200 {
		return 256
	}
	return 128
}

func gaussianNoise(n, dim int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		out[i] = row
	}
	return out
}

// gaussianNoiseInto fills dst (reshaped to n×dim) with standard-normal
// draws in row-major order — the same draw order as gaussianNoise, so the
// two are interchangeable without perturbing the RNG stream.
func gaussianNoiseInto(dst *nn.Tensor, n, dim int, rng *rand.Rand) *nn.Tensor {
	dst.Reset(n, dim)
	data := dst.Data()
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return dst
}
