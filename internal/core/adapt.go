package core

import (
	"fmt"
	"math/rand"

	"netdrift/internal/nn"
)

// This file is the adaptation serving hot path. TransformTarget is the
// offline, allocating API; Adapt/AdaptBatch run the same alignment over
// caller-owned scratch and the inference-only forward kernels so a
// steady-state micro-batch performs no allocations and many workers can
// share one fitted (immutable) Adapter concurrently.
//
// Determinism contract (see DESIGN.md): the generator noise for a row
// depends only on that row's seed — never on batch composition — so a
// coalesced micro-batch is bit-identical to adapting each row alone.
// Seed 0 selects the pinned prior-mode draw (the paper's M=1 inference,
// exactly what TransformTarget uses); any other seed selects a
// reproducible Gaussian draw.

// SampleSeed derives the noise seed for row i of a request from the
// request-scoped seed, via a splitmix64 step so adjacent rows get
// decorrelated streams. A zero request seed stays zero for every row,
// preserving the pinned-noise default.
func SampleSeed(requestSeed int64, i int) int64 {
	if requestSeed == 0 {
		return 0
	}
	z := uint64(requestSeed) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // keep the "pinned noise" sentinel unreachable from nonzero seeds
	}
	return int64(z)
}

// AdaptScratch holds the per-worker buffers behind Adapt/AdaptBatch. One
// scratch serves one call at a time; serving workers own one each. The
// zero value is ready to use and grows to steady state on first call.
type AdaptScratch struct {
	scaled nn.Tensor // full-width scaled input rows
	inv    nn.Tensor // invariant column gather
	noise  nn.Tensor // per-row generator noise
	genIn  nn.Tensor // [inv | noise]
	out    nn.Tensor // merged full-width output
	infer  nn.InferScratch
	rng    *rand.Rand // reseeded per row; avoids a rand.New per sample

	rowBuf  [1][]float64 // single-row adapters for Adapt
	seedBuf [1]int64
}

// seeded returns the scratch RNG reseeded to seed, reproducing exactly
// the draw stream of rand.New(rand.NewSource(seed)).
func (s *AdaptScratch) seeded(seed int64) *rand.Rand {
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(seed))
		return s.rng
	}
	s.rng.Seed(seed)
	return s.rng
}

// BatchReconstructor is implemented by reconstructors that support the
// serving hot path: one inference-only generator forward per micro-batch
// over [X_inv | Z] stitched in a flat tensor, with per-row noise drawn
// from the given seeds. The returned tensor is scratch-owned and valid
// until the scratch's next use.
type BatchReconstructor interface {
	Reconstructor
	ReconstructT(inv *nn.Tensor, seeds []int64, scr *AdaptScratch) (*nn.Tensor, error)
}

var _ BatchReconstructor = (*CGAN)(nil)

// ReconstructT implements BatchReconstructor: the whole batch runs
// through one generator inference pass. Rows with seed 0 use the pinned
// prior-mode noise (fixedZ), matching Reconstruct bit for bit; other
// seeds draw a reproducible standard-normal noise row.
func (g *CGAN) ReconstructT(inv *nn.Tensor, seeds []int64, scr *AdaptScratch) (*nn.Tensor, error) {
	if !g.trained {
		return nil, ErrNotFitted
	}
	n := inv.Rows()
	if n != len(seeds) {
		return nil, fmt.Errorf("core: %d invariant rows for %d seeds", n, len(seeds))
	}
	if inv.Cols() != g.invDim {
		return nil, fmt.Errorf("core: reconstruct width %d, trained on %d", inv.Cols(), g.invDim)
	}
	noise := scr.noise.Reset(n, g.cfg.NoiseDim)
	for i, seed := range seeds {
		row := noise.Row(i)
		if seed == 0 {
			copy(row, g.fixedZ)
			continue
		}
		rng := scr.seeded(seed)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	nn.ConcatInto(&scr.genIn, inv, noise)
	return nn.Infer(g.gen, &scr.genIn, &scr.infer), nil
}

// Adapt aligns one raw target row to the source domain: the batch-size-1
// case of AdaptBatch, and the sequential baseline of the serving
// benchmark. The returned slice is scratch-owned and valid until the
// scratch's next use.
func (a *Adapter) Adapt(row []float64, seed int64, scr *AdaptScratch) ([]float64, error) {
	scr.rowBuf[0] = row
	scr.seedBuf[0] = seed
	out, err := a.AdaptBatch(scr.rowBuf[:], scr.seedBuf[:], scr)
	scr.rowBuf[0] = nil
	if err != nil {
		return nil, err
	}
	return out.Row(0), nil
}

// AdaptBatch aligns a micro-batch of raw target rows in one pass: scale,
// stitch the invariant block with per-row noise, one generator forward
// for the whole batch, merge. seeds carries one noise seed per row
// (derive them with SampleSeed). The output is bit-identical to calling
// Adapt row by row with the same seeds, and — with all-zero seeds — to
// TransformTarget. The returned tensor is scratch-owned and valid until
// the scratch's next use; a steady-state call allocates nothing when the
// reconstructor implements BatchReconstructor.
//
// AdaptBatch never mutates the Adapter, so any number of goroutines may
// serve from one fitted Adapter concurrently, each with its own scratch.
func (a *Adapter) AdaptBatch(rows [][]float64, seeds []int64, scr *AdaptScratch) (*nn.Tensor, error) {
	if !a.fitted {
		return nil, ErrNotFitted
	}
	if len(rows) == 0 {
		return scr.out.Reset(0, 0), nil
	}
	if len(rows) != len(seeds) {
		return nil, fmt.Errorf("core: %d rows for %d seeds", len(rows), len(seeds))
	}
	width := len(a.sep.invariant) + len(a.sep.variant)
	scaled := scr.scaled.Reset(len(rows), width)
	for i, row := range rows {
		if err := a.sep.scaler.TransformRowInto(scaled.Row(i), row); err != nil {
			return nil, err
		}
	}
	if a.cfg.Mode == ModeFS {
		// Invariant projection: the FS-only serving output.
		out := scr.out.Reset(len(rows), len(a.sep.invariant))
		for i := 0; i < scaled.Rows(); i++ {
			src := scaled.Row(i)
			dst := out.Row(i)
			for k, c := range a.sep.invariant {
				dst[k] = src[c]
			}
		}
		return out, nil
	}
	if a.recon == nil {
		// No variant features identified: pass-through scaling.
		return scaled, nil
	}
	inv := scr.inv.Reset(len(rows), len(a.sep.invariant))
	for i := 0; i < scaled.Rows(); i++ {
		src := scaled.Row(i)
		dst := inv.Row(i)
		for k, c := range a.sep.invariant {
			dst[k] = src[c]
		}
	}
	vrHat, err := a.reconstructForServe(inv, seeds, scr)
	if err != nil {
		return nil, err
	}
	if vrHat.Rows() != len(rows) || vrHat.Cols() != len(a.sep.variant) {
		return nil, fmt.Errorf("core: reconstructor returned %dx%d, want %dx%d",
			vrHat.Rows(), vrHat.Cols(), len(rows), len(a.sep.variant))
	}
	out := scr.out.Reset(len(rows), width)
	for i := 0; i < out.Rows(); i++ {
		dst := out.Row(i)
		invRow := inv.Row(i)
		vrRow := vrHat.Row(i)
		for k, c := range a.sep.invariant {
			dst[c] = invRow[k]
		}
		for k, c := range a.sep.variant {
			dst[c] = vrRow[k]
		}
	}
	return out, nil
}

// reconstructForServe routes through the flat batch path when the
// reconstructor supports it and falls back to the allocating Reconstruct
// (which ignores seeds — the VAE/AE ablations are deterministic) so every
// persisted bundle stays servable.
func (a *Adapter) reconstructForServe(inv *nn.Tensor, seeds []int64, scr *AdaptScratch) (*nn.Tensor, error) {
	if br, ok := a.recon.(BatchReconstructor); ok {
		return br.ReconstructT(inv, seeds, scr)
	}
	rows, err := a.recon.Reconstruct(inv.ToRows())
	if err != nil {
		return nil, err
	}
	return scr.noise.SetFromRows(rows), nil
}
