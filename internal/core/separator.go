// Package core implements the paper's contribution: the FS causal
// feature-separation method and the conditional-GAN reconstruction of
// domain-variant features, composed into a model-agnostic domain-adaptation
// Adapter (paper §V). Classifiers are trained exclusively on source-domain
// data; the Adapter aligns target samples to the source distribution at
// inference time.
package core

import (
	"errors"
	"fmt"

	"netdrift/internal/causal"
	"netdrift/internal/dataset"
	"netdrift/internal/stats"
)

// ErrNotFitted is returned when using an unfitted component.
var ErrNotFitted = errors.New("core: not fitted")

// FeatureSeparator runs the FS method: scale features to [-1, 1] (fitted on
// source), pool source and few-shot target samples with an F-node, and
// identify the soft-intervention targets as domain-variant features.
type FeatureSeparator struct {
	Config causal.FNodeConfig

	scaler    *stats.MinMaxScaler
	variant   []int
	invariant []int
	fitted    bool
}

// NewFeatureSeparator creates a separator with the given CI configuration.
func NewFeatureSeparator(cfg causal.FNodeConfig) *FeatureSeparator {
	return &FeatureSeparator{Config: cfg}
}

// Fit learns the scaling from source data and separates features using the
// (typically few-shot) target sample.
func (s *FeatureSeparator) Fit(sourceX, targetX [][]float64) error {
	if len(sourceX) == 0 || len(targetX) == 0 {
		return fmt.Errorf("core: separator needs source and target samples (%d, %d)", len(sourceX), len(targetX))
	}
	scaler := stats.NewMinMaxScaler(-1, 1)
	if err := scaler.Fit(sourceX); err != nil {
		return fmt.Errorf("core: fit scaler: %w", err)
	}
	srcScaled, err := scaler.Transform(sourceX)
	if err != nil {
		return err
	}
	tgtScaled, err := scaler.Transform(targetX)
	if err != nil {
		return err
	}
	res, err := causal.FindVariantFeatures(srcScaled, tgtScaled, s.Config)
	if err != nil {
		return fmt.Errorf("core: feature separation: %w", err)
	}
	s.scaler = scaler
	s.variant = res.Variant
	s.invariant = res.Invariant
	s.fitted = true
	return nil
}

// Variant returns the identified domain-variant feature indices.
func (s *FeatureSeparator) Variant() []int {
	return append([]int(nil), s.variant...)
}

// Invariant returns the identified domain-invariant feature indices.
func (s *FeatureSeparator) Invariant() []int {
	return append([]int(nil), s.invariant...)
}

// Scale applies the fitted [-1, 1] scaling.
func (s *FeatureSeparator) Scale(x [][]float64) ([][]float64, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	return s.scaler.Transform(x)
}

// Split partitions scaled rows into (invariant, variant) column groups.
func (s *FeatureSeparator) Split(scaled [][]float64) (inv, vr [][]float64, err error) {
	if !s.fitted {
		return nil, nil, ErrNotFitted
	}
	inv = selectCols(scaled, s.invariant)
	vr = selectCols(scaled, s.variant)
	return inv, vr, nil
}

// Merge reassembles full-width rows from invariant and variant column
// groups (inverse of Split).
func (s *FeatureSeparator) Merge(inv, vr [][]float64) ([][]float64, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	if len(inv) != len(vr) {
		return nil, fmt.Errorf("core: merge row mismatch %d vs %d", len(inv), len(vr))
	}
	width := len(s.invariant) + len(s.variant)
	out := make([][]float64, len(inv))
	for i := range inv {
		row := make([]float64, width)
		for k, c := range s.invariant {
			row[c] = inv[i][k]
		}
		for k, c := range s.variant {
			row[c] = vr[i][k]
		}
		out[i] = row
	}
	return out, nil
}

// InvariantDataset projects a dataset onto the invariant features after
// scaling — the training input of the FS-only variant of the method.
func (s *FeatureSeparator) InvariantDataset(d *dataset.Dataset) (*dataset.Dataset, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	scaled, err := s.Scale(d.X)
	if err != nil {
		return nil, err
	}
	out := d.Clone()
	out.X = scaled
	return out.SelectFeatures(s.invariant)
}

func selectCols(x [][]float64, cols []int) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, len(cols))
		for k, c := range cols {
			r[k] = row[c]
		}
		out[i] = r
	}
	return out
}
