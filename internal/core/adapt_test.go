package core

import (
	"testing"
)

func TestSampleSeed(t *testing.T) {
	// Zero request seed pins every row to the fixed prior draw.
	for _, i := range []int{0, 1, 7, 1000} {
		if got := SampleSeed(0, i); got != 0 {
			t.Errorf("SampleSeed(0, %d) = %d, want 0", i, got)
		}
	}
	// Nonzero seeds decorrelate across rows and never collapse onto the
	// pinned-noise sentinel.
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		s := SampleSeed(42, i)
		if s == 0 {
			t.Fatalf("SampleSeed(42, %d) = 0, reserved for pinned noise", i)
		}
		if seen[s] {
			t.Fatalf("SampleSeed(42, %d) = %d collides with an earlier row", i, s)
		}
		seen[s] = true
	}
	// Row seeds are a pure function of (requestSeed, i).
	if SampleSeed(42, 3) != SampleSeed(42, 3) {
		t.Error("SampleSeed not deterministic")
	}
	if SampleSeed(42, 3) == SampleSeed(43, 3) {
		t.Error("different request seeds should give different row seeds")
	}
}

// fitServeAdapter returns a fitted FSRecon adapter (GAN reconstructor) and
// raw target rows to serve.
func fitServeAdapter(t *testing.T) (*Adapter, [][]float64) {
	t.Helper()
	src := driftToy(800, false, 8)
	tgtSupport := driftToy(20, true, 9)
	ad := NewAdapter(AdapterConfig{
		Mode:  ModeFSRecon,
		Recon: ReconGAN,
		GAN:   GANConfig{Epochs: 10},
		Seed:  11,
	})
	if err := ad.Fit(src, tgtSupport); err != nil {
		t.Fatal(err)
	}
	return ad, driftToy(64, true, 10).X
}

func TestAdaptBatchMatchesTransformTarget(t *testing.T) {
	// All-zero seeds select the pinned prior-mode noise, so the serving
	// path must reproduce the offline TransformTarget bit for bit.
	ad, rows := fitServeAdapter(t)
	want, err := ad.TransformTarget(rows)
	if err != nil {
		t.Fatal(err)
	}
	var scr AdaptScratch
	seeds := make([]int64, len(rows))
	out, err := ad.AdaptBatch(rows, seeds, &scr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != len(want) || out.Cols() != len(want[0]) {
		t.Fatalf("AdaptBatch shape %dx%d, want %dx%d", out.Rows(), out.Cols(), len(want), len(want[0]))
	}
	for i := range want {
		got := out.Row(i)
		for j := range want[i] {
			if got[j] != want[i][j] {
				t.Fatalf("AdaptBatch differs from TransformTarget at [%d][%d]: %v vs %v",
					i, j, got[j], want[i][j])
			}
		}
	}
}

func TestAdaptBatchMatchesPerSampleAdapt(t *testing.T) {
	// The determinism contract: a coalesced micro-batch is bit-identical
	// to adapting each row alone with the same derived seeds, regardless
	// of batch composition.
	ad, rows := fitServeAdapter(t)
	const requestSeed = 77
	seeds := make([]int64, len(rows))
	for i := range seeds {
		seeds[i] = SampleSeed(requestSeed, i)
	}
	var batchScr AdaptScratch
	out, err := ad.AdaptBatch(rows, seeds, &batchScr)
	if err != nil {
		t.Fatal(err)
	}
	var rowScr AdaptScratch
	for i, row := range rows {
		single, err := ad.Adapt(row, seeds[i], &rowScr)
		if err != nil {
			t.Fatal(err)
		}
		batched := out.Row(i)
		if len(single) != len(batched) {
			t.Fatalf("row %d width %d vs %d", i, len(single), len(batched))
		}
		for j := range single {
			if single[j] != batched[j] {
				t.Fatalf("row %d diverges at col %d: solo %v vs batched %v",
					i, j, single[j], batched[j])
			}
		}
	}

	// Different seeds must actually change the draw (the noise is live).
	other, err := ad.Adapt(rows[0], SampleSeed(requestSeed+1, 0), &rowScr)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j, v := range other {
		if v != out.Row(0)[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("changing the seed did not change the adapted row")
	}
}

func TestAdaptBatchSubBatchInvariance(t *testing.T) {
	// Splitting one request across two micro-batches must not change any
	// row: noise depends on the row's seed, never on batch composition.
	ad, rows := fitServeAdapter(t)
	seeds := make([]int64, len(rows))
	for i := range seeds {
		seeds[i] = SampleSeed(123, i)
	}
	var scr AdaptScratch
	whole, err := ad.AdaptBatch(rows, seeds, &scr)
	if err != nil {
		t.Fatal(err)
	}
	wholeCopy := make([][]float64, whole.Rows())
	for i := range wholeCopy {
		wholeCopy[i] = append([]float64(nil), whole.Row(i)...)
	}
	cut := len(rows) / 3
	var scr2 AdaptScratch
	for _, span := range [][2]int{{0, cut}, {cut, len(rows)}} {
		part, err := ad.AdaptBatch(rows[span[0]:span[1]], seeds[span[0]:span[1]], &scr2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < part.Rows(); i++ {
			got := part.Row(i)
			want := wholeCopy[span[0]+i]
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("split batch diverges at row %d col %d", span[0]+i, j)
				}
			}
		}
	}
}

func TestAdaptBatchFSMode(t *testing.T) {
	src := driftToy(600, false, 12)
	tgtSupport := driftToy(20, true, 13)
	ad := NewAdapter(AdapterConfig{Mode: ModeFS, Seed: 14})
	if err := ad.Fit(src, tgtSupport); err != nil {
		t.Fatal(err)
	}
	rows := src.X[:8]
	want, err := ad.TransformTarget(rows)
	if err != nil {
		t.Fatal(err)
	}
	var scr AdaptScratch
	out, err := ad.AdaptBatch(rows, make([]int64, len(rows)), &scr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cols() != len(want[0]) {
		t.Fatalf("FS projection width %d, want %d", out.Cols(), len(want[0]))
	}
	for i := range want {
		for j := range want[i] {
			if out.Row(i)[j] != want[i][j] {
				t.Fatalf("FS projection differs at [%d][%d]", i, j)
			}
		}
	}
}

func TestAdaptBatchErrors(t *testing.T) {
	var scr AdaptScratch
	unfit := NewAdapter(AdapterConfig{})
	if _, err := unfit.AdaptBatch([][]float64{{1}}, []int64{0}, &scr); err != ErrNotFitted {
		t.Errorf("unfitted AdaptBatch err = %v, want ErrNotFitted", err)
	}
	ad, rows := fitServeAdapter(t)
	if _, err := ad.AdaptBatch(rows[:2], make([]int64, 3), &scr); err == nil {
		t.Error("expected rows/seeds length mismatch error")
	}
	if _, err := ad.AdaptBatch([][]float64{{1, 2}}, []int64{0}, &scr); err == nil {
		t.Error("expected row width mismatch error")
	}
	out, err := ad.AdaptBatch(nil, nil, &scr)
	if err != nil || out.Rows() != 0 {
		t.Errorf("empty batch: out=%dx%d err=%v", out.Rows(), out.Cols(), err)
	}
}

func TestAdaptBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	ad, rows := fitServeAdapter(t)
	seeds := make([]int64, len(rows))
	for i := range seeds {
		seeds[i] = SampleSeed(5, i)
	}
	var scr AdaptScratch
	if _, err := ad.AdaptBatch(rows, seeds, &scr); err != nil { // warm the arena
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ad.AdaptBatch(rows, seeds, &scr); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state AdaptBatch allocates %.1f allocs/op, want 0", allocs)
	}
}
