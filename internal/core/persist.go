package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"netdrift/internal/causal"
	"netdrift/internal/nn"
	"netdrift/internal/stats"
)

// The persistence format captures everything the inference path needs: the
// fitted scaler bounds, the variant/invariant split, and the generator
// weights (the discriminator exists only during training and is not
// saved). Version guards future format changes.

const persistVersion = 1

// ErrUnsupportedPersist is returned when saving an adapter whose
// reconstructor cannot be serialized yet (VAE/AE ablations).
var ErrUnsupportedPersist = errors.New("core: adapter persistence supports ModeFS and GAN-based ModeFSRecon only")

type adapterBlob struct {
	Version   int          `json:"version"`
	Mode      Mode         `json:"mode"`
	Recon     ReconKind    `json:"recon,omitempty"`
	Mins      []float64    `json:"mins"`
	Maxs      []float64    `json:"maxs"`
	Variant   []int        `json:"variant"`
	Invariant []int        `json:"invariant"`
	GAN       *ganBlob     `json:"gan,omitempty"`
	FS        fsConfigBlob `json:"fs"`
}

type fsConfigBlob struct {
	Alpha            float64 `json:"alpha"`
	ExonerationAlpha float64 `json:"exonerationAlpha"`
	MaxOrder         int     `json:"maxOrder"`
	MaxNeighbors     int     `json:"maxNeighbors"`
	MarginalOnly     bool    `json:"marginalOnly"`
}

type ganBlob struct {
	Config   GANConfig    `json:"config"`
	InvDim   int          `json:"invDim"`
	VarDim   int          `json:"varDim"`
	FixedZ   []float64    `json:"fixedZ"`
	Snapshot *nn.Snapshot `json:"snapshot"`
}

// Save serializes a fitted adapter (FS mode, or FSRecon with a GAN/NoCond
// reconstructor) as JSON.
func (a *Adapter) Save(w io.Writer) error {
	blob, err := a.saveBlob()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	return enc.Encode(blob)
}

// saveBlob assembles the persistence blob shared by the JSON and binary
// codecs, so both formats serialize exactly the same state.
func (a *Adapter) saveBlob() (*adapterBlob, error) {
	if !a.fitted {
		return nil, ErrNotFitted
	}
	mins, maxs := a.sep.scaler.Bounds()
	blob := adapterBlob{
		Version:   persistVersion,
		Mode:      a.cfg.Mode,
		Mins:      mins,
		Maxs:      maxs,
		Variant:   a.sep.Variant(),
		Invariant: a.sep.Invariant(),
		FS: fsConfigBlob{
			Alpha:            a.cfg.FS.Alpha,
			ExonerationAlpha: a.cfg.FS.ExonerationAlpha,
			MaxOrder:         a.cfg.FS.MaxOrder,
			MaxNeighbors:     a.cfg.FS.MaxNeighbors,
			MarginalOnly:     a.cfg.FS.MarginalOnly,
		},
	}
	if a.cfg.Mode == ModeFSRecon {
		blob.Recon = a.cfg.Recon
		if a.recon != nil {
			gan, ok := a.recon.(*CGAN)
			if !ok {
				return nil, ErrUnsupportedPersist
			}
			blob.GAN = &ganBlob{
				Config:   gan.cfg,
				InvDim:   gan.invDim,
				VarDim:   gan.varDim,
				FixedZ:   append([]float64(nil), gan.fixedZ...),
				Snapshot: nn.TakeSnapshot(gan.gen),
			}
		}
	}
	return &blob, nil
}

// LoadAdapter restores an adapter saved with Save. The result supports
// TransformTarget, TrainingData, and the feature accessors; it cannot be
// re-Fit (construct a fresh Adapter for that).
func LoadAdapter(r io.Reader) (*Adapter, error) {
	var blob adapterBlob
	dec := json.NewDecoder(r)
	if err := dec.Decode(&blob); err != nil {
		return nil, fmt.Errorf("core: decode adapter: %w", err)
	}
	return adapterFromBlob(&blob)
}

// adapterFromBlob rebuilds an adapter from its persistence blob — the one
// assembly path shared by the JSON and binary codecs, so a bundle loads to
// bit-identical state regardless of which format carried it.
func adapterFromBlob(blob *adapterBlob) (*Adapter, error) {
	if blob.Version != persistVersion {
		return nil, fmt.Errorf("core: unsupported adapter version %d", blob.Version)
	}
	if blob.Mode != ModeFS && blob.Mode != ModeFSRecon {
		return nil, fmt.Errorf("core: unknown adapter mode %d", int(blob.Mode))
	}

	sep := NewFeatureSeparator(causalConfigFromBlob(blob.FS))
	sep.scaler = newScalerFromBounds(blob.Mins, blob.Maxs)
	if sep.scaler == nil {
		return nil, fmt.Errorf("core: invalid scaler bounds in adapter blob")
	}
	sep.variant = append([]int(nil), blob.Variant...)
	sep.invariant = append([]int(nil), blob.Invariant...)
	sep.fitted = true

	a := &Adapter{
		cfg:    AdapterConfig{Mode: blob.Mode, Recon: blob.Recon},
		sep:    sep,
		fitted: true,
	}
	if blob.Mode == ModeFSRecon && blob.GAN != nil {
		gan, err := rebuildGAN(blob.GAN)
		if err != nil {
			return nil, err
		}
		a.recon = gan
	}
	return a, nil
}

func causalConfigFromBlob(b fsConfigBlob) causal.FNodeConfig {
	return causal.FNodeConfig{
		Alpha:            b.Alpha,
		ExonerationAlpha: b.ExonerationAlpha,
		MaxOrder:         b.MaxOrder,
		MaxNeighbors:     b.MaxNeighbors,
		MarginalOnly:     b.MarginalOnly,
	}
}

func newScalerFromBounds(mins, maxs []float64) *stats.MinMaxScaler {
	s := stats.NewMinMaxScaler(-1, 1)
	if err := s.RestoreBounds(mins, maxs); err != nil {
		return nil
	}
	return s
}

// rebuildGAN reconstructs a trained generator from its blob: the network is
// re-created with the saved architecture config, then the weight snapshot
// is restored.
func rebuildGAN(blob *ganBlob) (*CGAN, error) {
	if blob.InvDim <= 0 || blob.VarDim <= 0 {
		return nil, fmt.Errorf("core: invalid GAN dims %dx%d", blob.InvDim, blob.VarDim)
	}
	g := &CGAN{cfg: blob.Config}
	g.invDim = blob.InvDim
	g.varDim = blob.VarDim
	// Architecture construction must match Fit exactly; the snapshot
	// restore below overwrites the random initialization.
	rng := rand.New(rand.NewSource(blob.Config.Seed))
	h := g.cfg.Hidden
	trunk := nn.NewNetwork(
		nn.NewDense(g.invDim+g.cfg.NoiseDim, h, rng),
		nn.NewBatchNorm(h),
		nn.NewReLU(),
		nn.NewDense(h, h, rng),
		nn.NewBatchNorm(h),
		nn.NewReLU(),
	)
	g.gen = nn.NewNetwork(
		nn.NewSkipConcat(trunk),
		nn.NewDense(h+g.invDim+g.cfg.NoiseDim, g.varDim, rng),
		nn.NewTanh(),
	)
	if blob.Snapshot == nil {
		return nil, fmt.Errorf("core: adapter blob missing generator snapshot")
	}
	if err := nn.RestoreSnapshot(g.gen, blob.Snapshot); err != nil {
		return nil, fmt.Errorf("core: restore generator: %w", err)
	}
	if len(blob.FixedZ) != g.cfg.NoiseDim {
		return nil, fmt.Errorf("core: fixedZ length %d, want %d", len(blob.FixedZ), g.cfg.NoiseDim)
	}
	g.fixedZ = append([]float64(nil), blob.FixedZ...)
	g.rng = rand.New(rand.NewSource(blob.Config.Seed + 1))
	g.trained = true
	return g, nil
}
