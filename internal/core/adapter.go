package core

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"netdrift/internal/causal"
	"netdrift/internal/dataset"
	"netdrift/internal/obs"
)

// Mode selects between the two variants evaluated in the paper.
type Mode int

// Adapter modes.
const (
	// ModeFS trains the downstream model on invariant features only
	// ("FS (ours)" in Table I).
	ModeFS Mode = iota + 1
	// ModeFSRecon trains the downstream model on all features and replaces
	// a target sample's variant features with reconstructed source-like
	// values at inference ("FS+GAN (ours)" and the Table II ablations).
	ModeFSRecon
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeFS:
		return "FS"
	case ModeFSRecon:
		return "FS+Recon"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// AdapterConfig assembles the full pipeline.
type AdapterConfig struct {
	Mode  Mode               // default ModeFSRecon
	Recon ReconKind          // default ReconGAN (ignored in ModeFS)
	FS    causal.FNodeConfig // CI-test configuration
	GAN   GANConfig          // GAN/NoCond settings
	VAE   VAEConfig          // VAE/VanillaAE settings
	Seed  int64
	// Workers bounds the goroutines used by the pipeline's parallel stages
	// (the FS causal search and, when TrainShards > 1, the gradient-shard
	// workers of reconstructor training). It is propagated to the FS/GAN/VAE
	// sub-configs unless those already set their own value. <= 0 means
	// runtime.GOMAXPROCS(0); 1 forces the exact sequential path. Results are
	// bit-identical for every value.
	Workers int
	// TrainShards, when > 1, trains the reconstructor with that many
	// deterministic gradient shards per minibatch (data-parallel across
	// Workers goroutines). Propagated to the GAN/VAE sub-configs unless they
	// set their own. Unlike Workers, the shard count is part of the
	// reproducibility key, like the seed: changing it changes the trained
	// bits (changing Workers never does). 0/1 keeps the sequential trainer.
	TrainShards int
	// Obs, when non-nil, instruments the whole pipeline: Fit/TransformTarget
	// latencies and spans, CI-test counters from the FS search, per-epoch
	// reconstructor losses, and a reconstruction-error histogram. It is
	// propagated to the FS/GAN/VAE sub-configs unless those already carry
	// their own observer. Instrumentation never alters results: a nil Obs
	// and a live Obs produce byte-identical adapters. Never serialized.
	Obs *obs.Observer `json:"-"`
}

// Adapter is the paper's domain-adaptation pipeline (Fig. 1): feature
// separation on source + few-shot target data, reconstructor training on
// source data only, and inference-time alignment of target samples. The
// downstream network-management model is trained exclusively on (scaled)
// source data and never needs retraining as the domain drifts.
type Adapter struct {
	cfg AdapterConfig

	sep    *FeatureSeparator
	recon  Reconstructor
	fitted bool
}

// NewAdapter builds an unfitted adapter.
func NewAdapter(cfg AdapterConfig) *Adapter {
	if cfg.Mode == 0 {
		cfg.Mode = ModeFSRecon
	}
	if cfg.Recon == 0 {
		cfg.Recon = ReconGAN
	}
	if cfg.FS.Workers == 0 {
		cfg.FS.Workers = cfg.Workers
	}
	if cfg.GAN.Workers == 0 {
		cfg.GAN.Workers = cfg.Workers
	}
	if cfg.VAE.Workers == 0 {
		cfg.VAE.Workers = cfg.Workers
	}
	if cfg.GAN.Shards == 0 {
		cfg.GAN.Shards = cfg.TrainShards
	}
	if cfg.VAE.Shards == 0 {
		cfg.VAE.Shards = cfg.TrainShards
	}
	if cfg.Obs != nil {
		// Light up the sub-stages with the pipeline observer unless the
		// caller wired stage-specific ones.
		if cfg.FS.Obs == nil {
			cfg.FS.Obs = cfg.Obs
		}
		if cfg.GAN.Obs == nil {
			cfg.GAN.Obs = cfg.Obs
		}
		if cfg.VAE.Obs == nil {
			cfg.VAE.Obs = cfg.Obs
		}
	}
	return &Adapter{cfg: cfg}
}

// ErrNoVariant is returned when feature separation finds no variant
// features — there is no drift to mitigate and the adapter degenerates to
// pass-through scaling.
var ErrNoVariant = errors.New("core: no variant features identified")

// Fit runs feature separation using the few-shot target support set and
// trains the reconstructor on source data only.
func (a *Adapter) Fit(source *dataset.Dataset, targetSupport *dataset.Dataset) error {
	o := a.cfg.Obs
	defer o.Time(obs.MetricAdapterFitSeconds)()
	sp := o.StartSpan("adapter.fit")
	defer sp.End()

	if err := source.Validate(); err != nil {
		return fmt.Errorf("core: source: %w", err)
	}
	if err := targetSupport.Validate(); err != nil {
		return fmt.Errorf("core: target support: %w", err)
	}
	if source.NumFeatures() != targetSupport.NumFeatures() {
		return fmt.Errorf("core: feature width mismatch %d vs %d",
			source.NumFeatures(), targetSupport.NumFeatures())
	}
	fsSpan := sp.Child("feature_separation")
	sep := NewFeatureSeparator(a.cfg.FS)
	if err := sep.Fit(source.X, targetSupport.X); err != nil {
		fsSpan.End()
		return err
	}
	fsSpan.SetAttr("variant", strconv.Itoa(len(sep.variant)))
	fsSpan.SetAttr("invariant", strconv.Itoa(len(sep.invariant)))
	fsSpan.End()
	o.Gauge("netdrift_variant_features").Set(float64(len(sep.variant)))
	o.Gauge("netdrift_invariant_features").Set(float64(len(sep.invariant)))
	a.sep = sep
	a.recon = nil
	a.fitted = true

	if a.cfg.Mode != ModeFSRecon {
		return nil
	}
	if len(sep.variant) == 0 {
		// Nothing to reconstruct; TransformTarget degenerates to scaling.
		return nil
	}
	scaled, err := sep.Scale(source.X)
	if err != nil {
		return err
	}
	inv, vr, err := sep.Split(scaled)
	if err != nil {
		return err
	}
	recon, err := a.newReconstructor()
	if err != nil {
		return err
	}
	reconSpan := sp.Child("reconstructor.fit")
	reconSpan.SetAttr("kind", a.cfg.Recon.String())
	if err := recon.Fit(inv, vr, source.Y, source.NumClasses()); err != nil {
		reconSpan.End()
		return fmt.Errorf("core: train reconstructor: %w", err)
	}
	reconSpan.End()
	a.recon = recon
	a.observeReconstruction(inv, vr)
	return nil
}

// observeReconstruction records a per-row RMSE histogram of the trained
// reconstructor against the true (scaled) source variant block. It runs
// only when an observer is attached and performs no RNG draws, so it can
// never perturb adaptation results.
func (a *Adapter) observeReconstruction(inv, vr [][]float64) {
	o := a.cfg.Obs
	if o == nil || o.Registry == nil || len(inv) == 0 {
		return
	}
	vrHat, err := a.recon.Reconstruct(inv)
	if err != nil || len(vrHat) != len(vr) {
		return
	}
	h := o.Histogram(obs.MetricReconError)
	for i := range vr {
		var ss float64
		for j := range vr[i] {
			d := vrHat[i][j] - vr[i][j]
			ss += d * d
		}
		h.Observe(math.Sqrt(ss / float64(len(vr[i]))))
	}
}

func (a *Adapter) newReconstructor() (Reconstructor, error) {
	switch a.cfg.Recon {
	case ReconGAN:
		cfg := a.cfg.GAN
		cfg.Conditional = true
		if cfg.Seed == 0 {
			cfg.Seed = a.cfg.Seed + 101
		}
		return NewCGAN(cfg), nil
	case ReconGANNoCond:
		cfg := a.cfg.GAN
		cfg.Conditional = false
		if cfg.Seed == 0 {
			cfg.Seed = a.cfg.Seed + 101
		}
		return NewCGAN(cfg), nil
	case ReconVAE:
		cfg := a.cfg.VAE
		if cfg.Seed == 0 {
			cfg.Seed = a.cfg.Seed + 101
		}
		return NewVAE(cfg), nil
	case ReconVanillaAE:
		cfg := a.cfg.VAE
		if cfg.Seed == 0 {
			cfg.Seed = a.cfg.Seed + 101
		}
		return NewVanillaAE(cfg), nil
	default:
		return nil, fmt.Errorf("core: unknown reconstructor kind %d", int(a.cfg.Recon))
	}
}

// TrainingData returns the dataset on which the downstream network-
// management model should be trained: scaled source data with all features
// (ModeFSRecon) or projected onto invariant features (ModeFS). The model is
// trained on source data only, per the paper's no-retraining guarantee.
func (a *Adapter) TrainingData(source *dataset.Dataset) (*dataset.Dataset, error) {
	if !a.fitted {
		return nil, ErrNotFitted
	}
	if a.cfg.Mode == ModeFS {
		return a.sep.InvariantDataset(source)
	}
	scaled, err := a.sep.Scale(source.X)
	if err != nil {
		return nil, err
	}
	out := source.Clone()
	out.X = scaled
	return out, nil
}

// TransformTarget aligns raw target-domain rows to the source domain:
// scale, then (in ModeFSRecon) replace the variant features with
// reconstructions generated from the invariant features (Fig. 1(c)).
// In ModeFS it projects onto the invariant features instead.
func (a *Adapter) TransformTarget(x [][]float64) ([][]float64, error) {
	if !a.fitted {
		return nil, ErrNotFitted
	}
	if o := a.cfg.Obs; o != nil {
		defer o.Time(obs.MetricTransformSeconds)()
		o.Counter(obs.MetricTransformRows).Add(float64(len(x)))
	}
	scaled, err := a.sep.Scale(x)
	if err != nil {
		return nil, err
	}
	if a.cfg.Mode == ModeFS {
		return selectCols(scaled, a.sep.invariant), nil
	}
	if a.recon == nil {
		// No variant features were identified: pass-through.
		return scaled, nil
	}
	inv, _, err := a.sep.Split(scaled)
	if err != nil {
		return nil, err
	}
	vrHat, err := a.recon.Reconstruct(inv)
	if err != nil {
		return nil, err
	}
	return a.sep.Merge(inv, vrHat)
}

// VariantFeatures returns the indices identified as domain-variant.
func (a *Adapter) VariantFeatures() []int {
	if !a.fitted {
		return nil
	}
	return a.sep.Variant()
}

// InvariantFeatures returns the indices identified as domain-invariant.
func (a *Adapter) InvariantFeatures() []int {
	if !a.fitted {
		return nil
	}
	return a.sep.Invariant()
}

// NumFeatures returns the full raw feature width the adapter was fitted
// on — what every serving row must have. Zero before Fit.
func (a *Adapter) NumFeatures() int {
	if !a.fitted {
		return 0
	}
	return len(a.sep.invariant) + len(a.sep.variant)
}

// Reconstructor exposes the trained reconstructor (nil in ModeFS or when no
// variant features were found).
func (a *Adapter) Reconstructor() Reconstructor { return a.recon }

// Mode reports the adapter's operating mode.
func (a *Adapter) Mode() Mode { return a.cfg.Mode }
