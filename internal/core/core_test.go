package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"netdrift/internal/causal"
	"netdrift/internal/dataset"
	"netdrift/internal/stats"
)

// driftToy builds a small drifted classification problem:
//   - f0, f1: invariant, carry class signal
//   - f2: variant aggregate = f0 + f1 + class signal + small noise,
//     mean-shifted in the target domain
//   - f3: invariant pure noise
func driftToy(n int, target bool, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		cs := float64(2*c - 1) // -1 or +1
		f0 := cs + 0.5*rng.NormFloat64()
		f1 := cs*0.8 + 0.5*rng.NormFloat64()
		f2 := f0 + f1 + cs + 0.1*rng.NormFloat64()
		if target {
			f2 += 4 // soft intervention: traffic trend shift
		}
		f3 := rng.NormFloat64()
		x[i] = []float64{f0, f1, f2, f3}
		y[i] = c
	}
	return &dataset.Dataset{X: x, Y: y}
}

func TestFeatureSeparatorFindsShiftedFeature(t *testing.T) {
	src := driftToy(800, false, 1)
	tgt := driftToy(60, true, 2)
	sep := NewFeatureSeparator(causal.FNodeConfig{})
	if err := sep.Fit(src.X, tgt.X); err != nil {
		t.Fatal(err)
	}
	variant := sep.Variant()
	if len(variant) != 1 || variant[0] != 2 {
		t.Errorf("variant = %v; want [2]", variant)
	}
	inv := sep.Invariant()
	if len(inv) != 3 {
		t.Errorf("invariant = %v; want 3 features", inv)
	}
}

func TestFeatureSeparatorSplitMergeRoundTrip(t *testing.T) {
	src := driftToy(400, false, 3)
	tgt := driftToy(40, true, 4)
	sep := NewFeatureSeparator(causal.FNodeConfig{})
	if err := sep.Fit(src.X, tgt.X); err != nil {
		t.Fatal(err)
	}
	scaled, err := sep.Scale(src.X[:10])
	if err != nil {
		t.Fatal(err)
	}
	inv, vr, err := sep.Split(scaled)
	if err != nil {
		t.Fatal(err)
	}
	back, err := sep.Merge(inv, vr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scaled {
		for j := range scaled[i] {
			if back[i][j] != scaled[i][j] {
				t.Fatalf("merge(split(x)) != x at [%d][%d]", i, j)
			}
		}
	}
}

func TestFeatureSeparatorNotFitted(t *testing.T) {
	sep := NewFeatureSeparator(causal.FNodeConfig{})
	if _, err := sep.Scale([][]float64{{1}}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("err = %v; want ErrNotFitted", err)
	}
	if _, _, err := sep.Split(nil); !errors.Is(err, ErrNotFitted) {
		t.Errorf("err = %v; want ErrNotFitted", err)
	}
}

// fitToyReconstructor prepares scaled inv/var training splits from the toy
// source data.
func fitToyReconstructor(t *testing.T, r Reconstructor) (*FeatureSeparator, *dataset.Dataset) {
	t.Helper()
	src := driftToy(800, false, 5)
	tgt := driftToy(60, true, 6)
	sep := NewFeatureSeparator(causal.FNodeConfig{})
	if err := sep.Fit(src.X, tgt.X); err != nil {
		t.Fatal(err)
	}
	scaled, err := sep.Scale(src.X)
	if err != nil {
		t.Fatal(err)
	}
	inv, vr, err := sep.Split(scaled)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Fit(inv, vr, src.Y, 2); err != nil {
		t.Fatal(err)
	}
	return sep, src
}

// reconstructionError measures mean absolute error of reconstructed variant
// features against the true source values.
func reconstructionError(t *testing.T, r Reconstructor, sep *FeatureSeparator, src *dataset.Dataset) float64 {
	t.Helper()
	scaled, err := sep.Scale(src.X)
	if err != nil {
		t.Fatal(err)
	}
	inv, vr, err := sep.Split(scaled)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Reconstruct(inv)
	if err != nil {
		t.Fatal(err)
	}
	var mae float64
	var count float64
	for i := range vr {
		for j := range vr[i] {
			mae += math.Abs(got[i][j] - vr[i][j])
			count++
		}
	}
	return mae / count
}

func TestReconstructors(t *testing.T) {
	makers := []struct {
		name string
		make func() Reconstructor
		tol  float64
	}{
		{"GAN", func() Reconstructor { return NewCGAN(GANConfig{Epochs: 30, Conditional: true, Seed: 7}) }, 0.12},
		{"NoCond", func() Reconstructor { return NewCGAN(GANConfig{Epochs: 30, Seed: 7}) }, 0.14},
		{"VAE", func() Reconstructor { return NewVAE(VAEConfig{Epochs: 30, Seed: 7}) }, 0.15},
		{"VanillaAE", func() Reconstructor { return NewVanillaAE(VAEConfig{Epochs: 30, Seed: 7}) }, 0.12},
	}
	for _, m := range makers {
		m := m
		t.Run(m.name, func(t *testing.T) {
			r := m.make()
			sep, src := fitToyReconstructor(t, r)
			mae := reconstructionError(t, r, sep, src)
			// The variant feature is a near-deterministic function of the
			// invariants (plus class signal inferable from them), so a good
			// reconstructor gets close in the [-1,1] scaled space.
			if mae > m.tol {
				t.Errorf("%s reconstruction MAE = %.3f; want <= %.2f", m.name, mae, m.tol)
			}
		})
	}
}

func TestReconstructorNotFitted(t *testing.T) {
	for _, r := range []Reconstructor{
		NewCGAN(GANConfig{}), NewVAE(VAEConfig{}), NewVanillaAE(VAEConfig{}),
	} {
		if _, err := r.Reconstruct([][]float64{{1}}); !errors.Is(err, ErrNotFitted) {
			t.Errorf("%s: err = %v; want ErrNotFitted", r.Name(), err)
		}
	}
}

func TestReconstructorFitErrors(t *testing.T) {
	g := NewCGAN(GANConfig{Epochs: 1})
	if err := g.Fit(nil, nil, nil, 2); err == nil {
		t.Error("expected error for empty fit")
	}
	if err := g.Fit([][]float64{{1}}, [][]float64{{}}, []int{0}, 2); err == nil {
		t.Error("expected error for zero variant features")
	}
}

func TestAdapterEndToEndFSRecon(t *testing.T) {
	src := driftToy(800, false, 8)
	tgtSupport := driftToy(20, true, 9)
	tgtTest := driftToy(400, true, 10)

	ad := NewAdapter(AdapterConfig{
		Mode:  ModeFSRecon,
		Recon: ReconGAN,
		GAN:   GANConfig{Epochs: 30},
		Seed:  11,
	})
	if err := ad.Fit(src, tgtSupport); err != nil {
		t.Fatal(err)
	}
	if v := ad.VariantFeatures(); len(v) != 1 || v[0] != 2 {
		t.Fatalf("variant = %v; want [2]", v)
	}
	if ad.Reconstructor() == nil {
		t.Fatal("reconstructor missing in FSRecon mode")
	}

	// Training data keeps all features, scaled to [-1, 1].
	train, err := ad.TrainingData(src)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumFeatures() != 4 {
		t.Errorf("training width = %d; want 4", train.NumFeatures())
	}

	// Transformed target must look like the source distribution on the
	// variant feature: the raw target f2 is shifted by +4, the transformed
	// one must match the source mean closely.
	transformed, err := ad.TransformTarget(tgtTest.X)
	if err != nil {
		t.Fatal(err)
	}
	srcF2 := columnMean(train.X, 2)
	rawScaled, err := NewFeatureSeparator(causal.FNodeConfig{}).scalerFor(src.X, tgtTest.X)
	if err != nil {
		t.Fatal(err)
	}
	tgtF2Raw := columnMean(rawScaled, 2)
	tgtF2Fixed := columnMean(transformed, 2)
	if math.Abs(tgtF2Fixed-srcF2) > math.Abs(tgtF2Raw-srcF2)/2 {
		t.Errorf("transform did not pull variant feature toward source: src=%.3f raw=%.3f fixed=%.3f",
			srcF2, tgtF2Raw, tgtF2Fixed)
	}
	// Invariant features pass through unchanged.
	invScaled, err := ad.sep.Scale(tgtTest.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for _, j := range []int{0, 1, 3} {
			if transformed[i][j] != invScaled[i][j] {
				t.Fatalf("invariant feature %d modified by transform", j)
			}
		}
	}
}

// scalerFor is a test helper exposing scaled target data for comparison.
func (s *FeatureSeparator) scalerFor(src, tgt [][]float64) ([][]float64, error) {
	sc := stats.NewMinMaxScaler(-1, 1)
	if err := sc.Fit(src); err != nil {
		return nil, err
	}
	return sc.Transform(tgt)
}

func TestAdapterFSMode(t *testing.T) {
	src := driftToy(600, false, 12)
	tgtSupport := driftToy(20, true, 13)
	ad := NewAdapter(AdapterConfig{Mode: ModeFS, Seed: 14})
	if err := ad.Fit(src, tgtSupport); err != nil {
		t.Fatal(err)
	}
	train, err := ad.TrainingData(src)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumFeatures() != 3 {
		t.Errorf("FS training width = %d; want 3 (variant dropped)", train.NumFeatures())
	}
	out, err := ad.TransformTarget(src.X[:5])
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != 3 {
		t.Errorf("FS transform width = %d; want 3", len(out[0]))
	}
	if ad.Reconstructor() != nil {
		t.Error("FS mode must not train a reconstructor")
	}
}

func TestAdapterNoDrift(t *testing.T) {
	// Identical domains: no variant features; transform degenerates to
	// scaling and must not fail.
	src := driftToy(500, false, 15)
	tgtSupport := driftToy(30, false, 16)
	ad := NewAdapter(AdapterConfig{Mode: ModeFSRecon, GAN: GANConfig{Epochs: 2}, Seed: 17})
	if err := ad.Fit(src, tgtSupport); err != nil {
		t.Fatal(err)
	}
	if len(ad.VariantFeatures()) > 1 {
		t.Errorf("false-positive variant features: %v", ad.VariantFeatures())
	}
	out, err := ad.TransformTarget(src.X[:3])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || len(out[0]) != 4 {
		t.Errorf("pass-through transform shape wrong: %dx%d", len(out), len(out[0]))
	}
}

func TestAdapterErrors(t *testing.T) {
	ad := NewAdapter(AdapterConfig{})
	if _, err := ad.TransformTarget([][]float64{{1}}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("err = %v; want ErrNotFitted", err)
	}
	if _, err := ad.TrainingData(&dataset.Dataset{}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("err = %v; want ErrNotFitted", err)
	}
	src := driftToy(100, false, 18)
	narrow := &dataset.Dataset{X: [][]float64{{1, 2}}, Y: []int{0}}
	if err := ad.Fit(src, narrow); err == nil {
		t.Error("expected width mismatch error")
	}
	bad := NewAdapter(AdapterConfig{Recon: ReconKind(99)})
	if err := bad.Fit(src, driftToy(20, true, 19)); err == nil {
		t.Error("expected unknown reconstructor error")
	}
}

func TestM1InferenceIsStable(t *testing.T) {
	// §V-C2: with a small noise vector, repeated GAN reconstructions of the
	// same input lead to effectively identical downstream behaviour. Check
	// the reconstruction spread is small relative to the feature scale.
	r := NewCGAN(GANConfig{Epochs: 30, Conditional: true, Seed: 20, NoiseDim: 4})
	sep, src := fitToyReconstructor(t, r)
	scaled, err := sep.Scale(src.X[:20])
	if err != nil {
		t.Fatal(err)
	}
	inv, _, err := sep.Split(scaled)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Reconstruct(inv)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Reconstruct(inv)
	if err != nil {
		t.Fatal(err)
	}
	var spread float64
	var count float64
	for i := range a {
		for j := range a[i] {
			spread += math.Abs(a[i][j] - b[i][j])
			count++
		}
	}
	// The inference noise draw is pinned at fit time (the paper's M=1
	// premise, made operationally exact): repeated reconstructions of the
	// same input must agree bit-for-bit.
	if spread != 0 {
		t.Errorf("reconstruction spread across calls = %v; want 0 (pinned M=1 noise)", spread/count)
	}
}

func columnMean(x [][]float64, j int) float64 {
	var s float64
	for i := range x {
		s += x[i][j]
	}
	return s / float64(len(x))
}

// TestMonteCarloM1MatchesM16 quantifies §V-C2's claim: the M=1 estimate is
// effectively interchangeable with a proper M-sample Monte-Carlo average.
func TestMonteCarloM1MatchesM16(t *testing.T) {
	r := NewCGAN(GANConfig{Epochs: 30, Conditional: true, Seed: 33, NoiseDim: 4})
	sep, src := fitToyReconstructor(t, r)
	scaled, err := sep.Scale(src.X[:100])
	if err != nil {
		t.Fatal(err)
	}
	inv, _, err := sep.Split(scaled)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := r.Reconstruct(inv)
	if err != nil {
		t.Fatal(err)
	}
	m16, err := r.ReconstructMC(inv, 16)
	if err != nil {
		t.Fatal(err)
	}
	var diff, count float64
	for i := range m1 {
		for j := range m1[i] {
			diff += math.Abs(m1[i][j] - m16[i][j])
			count++
		}
	}
	if avg := diff / count; avg > 0.12 {
		t.Errorf("M=1 vs M=16 mean abs diff = %.3f; want small (§V-C2)", avg)
	}
	if _, err := r.ReconstructMC(inv, 0); err == nil {
		t.Error("expected error for m=0")
	}
}
