package core

import (
	"testing"

	"netdrift/internal/obs"
)

// TestObserverDoesNotPerturbResults pins the instrumentation contract: an
// attached Observer must not consume RNG or alter any arithmetic, so an
// instrumented run produces bit-identical outputs to a plain one.
func TestObserverDoesNotPerturbResults(t *testing.T) {
	src := driftToy(300, false, 11)
	tgt := driftToy(30, true, 12)
	test := driftToy(50, true, 13)

	fit := func(o *obs.Observer) *Adapter {
		ad := NewAdapter(AdapterConfig{
			Mode:  ModeFSRecon,
			Recon: ReconGAN,
			GAN:   GANConfig{Epochs: 8},
			Seed:  21,
			Obs:   o,
		})
		if err := ad.Fit(src, tgt); err != nil {
			t.Fatal(err)
		}
		return ad
	}

	observer := obs.New()
	plain := fit(nil)
	instrumented := fit(observer)

	plainOut, err := plain.TransformTarget(test.X)
	if err != nil {
		t.Fatal(err)
	}
	obsOut, err := instrumented.TransformTarget(test.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plainOut {
		for j := range plainOut[i] {
			if plainOut[i][j] != obsOut[i][j] {
				t.Fatalf("row %d col %d: instrumented %v != plain %v", i, j, obsOut[i][j], plainOut[i][j])
			}
		}
	}

	// And the observer must actually have seen the run.
	reg := observer.Registry
	if epochs, _ := reg.Value(obs.MetricTrainEpochs, "model", "GAN"); epochs != 8 {
		t.Errorf("train epochs = %v; want 8", epochs)
	}
	if fits, _ := reg.Value(obs.MetricTrainFits, "model", "GAN"); fits != 1 {
		t.Errorf("train fits = %v; want 1", fits)
	}
	if marg, _ := reg.Value(obs.MetricCITests, "kind", "marginal"); marg == 0 {
		t.Error("no marginal CI tests recorded")
	}
	if h := reg.Histogram(obs.MetricAdapterFitSeconds); h.Count() != 1 {
		t.Errorf("adapter fit timer count = %d; want 1", h.Count())
	}
	if rows, _ := reg.Value(obs.MetricTransformRows); rows != float64(len(test.X)) {
		t.Errorf("transform rows = %v; want %d", rows, len(test.X))
	}
	if conv := reg.Histogram(obs.MetricConvergedEpoch, "model", "GAN"); conv.Count() != 1 {
		t.Errorf("converged-epoch count = %d; want 1", conv.Count())
	} else if m := conv.Mean(); m < 1 || m > 8 {
		t.Errorf("converged epoch = %v; want within [1, 8]", m)
	}
}
