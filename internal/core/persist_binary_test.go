package core

import (
	"bytes"
	"testing"

	"netdrift/internal/binenc"
)

// fitPersistAdapter builds a small fitted FSRecon adapter for codec tests.
func fitPersistAdapter(t *testing.T, seed int64) *Adapter {
	t.Helper()
	src := driftToy(500, false, seed)
	sup := driftToy(20, true, seed+1)
	ad := NewAdapter(AdapterConfig{
		Mode:  ModeFSRecon,
		Recon: ReconGAN,
		GAN:   GANConfig{Epochs: 8},
		Seed:  seed,
	})
	if err := ad.Fit(src, sup); err != nil {
		t.Fatal(err)
	}
	return ad
}

// TestAdapterBinaryRoundTripMatchesJSON pins the cross-codec contract: an
// adapter loaded from its binary encoding re-serializes to exactly the
// same JSON as one loaded from its JSON encoding, and both transform
// identically bit for bit.
func TestAdapterBinaryRoundTripMatchesJSON(t *testing.T) {
	ad := fitPersistAdapter(t, 61)

	bin, err := ad.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := LoadAdapterBinary(binenc.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	var jsonBuf bytes.Buffer
	if err := ad.Save(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := LoadAdapter(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}

	// The strongest equality check available without reflection over
	// unexported state: both loaded adapters must re-save to identical
	// JSON bytes.
	var a, b bytes.Buffer
	if err := fromBin.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := fromJSON.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("binary-loaded adapter re-saves to different JSON than JSON-loaded adapter")
	}

	test := driftToy(40, true, 62)
	want, err := ad.TransformTarget(test.X)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fromBin.TransformTarget(test.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("binary-loaded transform differs at [%d][%d]: %v vs %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestAdapterBinaryRoundTripFS covers the GAN-less ModeFS blob (hasGAN=0).
func TestAdapterBinaryRoundTripFS(t *testing.T) {
	src := driftToy(400, false, 63)
	sup := driftToy(20, true, 64)
	ad := NewAdapter(AdapterConfig{Mode: ModeFS, Seed: 65})
	if err := ad.Fit(src, sup); err != nil {
		t.Fatal(err)
	}
	bin, err := ad.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAdapterBinary(binenc.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	test := driftToy(30, true, 66)
	a, _ := ad.TransformTarget(test.X)
	b, _ := loaded.TransformTarget(test.X)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("FS binary transform values changed after load")
			}
		}
	}
}

// TestLoadAdapterBinaryMalformed feeds truncations of a valid encoding
// plus hostile dim headers; every case must fail with an error, never
// panic or misload.
func TestLoadAdapterBinaryMalformed(t *testing.T) {
	ad := fitPersistAdapter(t, 67)
	bin, err := ad.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 2, 4, 16, len(bin) / 2, len(bin) - 1} {
		if _, err := LoadAdapterBinary(binenc.NewReader(bin[:cut])); err == nil {
			t.Errorf("truncation at %d bytes loaded successfully", cut)
		}
	}
	// Corrupt the declared hidden width (first GAN config u32 after the
	// epochs field would be fiddly to locate; instead flip the version).
	bad := append([]byte(nil), bin...)
	bad[0] = 99
	if _, err := LoadAdapterBinary(binenc.NewReader(bad)); err == nil {
		t.Error("bad version loaded successfully")
	}
}
