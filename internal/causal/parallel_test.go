package causal

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"netdrift/internal/obs"
)

// driftedData synthesizes a correlated source domain and a target domain
// whose last few columns are shifted (soft interventions), so the search
// has real marginal candidates, exonerations, and variant verdicts.
func driftedData(nSrc, nTgt, d int, seed int64) (source, target [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	gen := func(n int, drift bool) [][]float64 {
		rows := make([][]float64, n)
		for i := range rows {
			row := make([]float64, d)
			base := rng.NormFloat64()
			for j := 0; j < d; j++ {
				row[j] = 0.6*base + rng.NormFloat64()
				if drift && j >= d-d/3 {
					row[j] += 1.5 // shifted block: the true variant features
				}
			}
			rows[i] = row
		}
		return rows
	}
	return gen(nSrc, false), gen(nTgt, true)
}

// eventRecorder captures the typed search hooks so the exact event stream
// can be compared between sequential and parallel runs.
type eventRecorder struct {
	tests    []obs.CITest
	verdicts []obs.FeatureVerdict
}

func (r *eventRecorder) CITest(t obs.CITest)          { r.tests = append(r.tests, t) }
func (r *eventRecorder) Verdict(v obs.FeatureVerdict) { r.verdicts = append(r.verdicts, v) }

func runSearch(t *testing.T, source, target [][]float64, workers int) (*FNodeResult, *eventRecorder) {
	t.Helper()
	rec := &eventRecorder{}
	res, err := FindVariantFeatures(source, target, FNodeConfig{
		Workers: workers,
		Obs:     &obs.Observer{Search: rec},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

func TestFindVariantFeaturesParallelBitIdentical(t *testing.T) {
	source, target := driftedData(300, 60, 24, 7)
	seq, seqRec := runSearch(t, source, target, 1)
	if len(seq.Variant) == 0 || len(seq.Invariant) == 0 {
		t.Fatalf("degenerate fixture: variant=%v invariant=%v", seq.Variant, seq.Invariant)
	}
	for _, workers := range []int{2, 3, 8} {
		par, parRec := runSearch(t, source, target, workers)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: result differs from sequential:\nseq %+v\npar %+v", workers, seq, par)
		}
		if !reflect.DeepEqual(seqRec.tests, parRec.tests) {
			t.Errorf("workers=%d: CI-test event stream differs (%d vs %d events)",
				workers, len(seqRec.tests), len(parRec.tests))
		}
		if !reflect.DeepEqual(seqRec.verdicts, parRec.verdicts) {
			t.Errorf("workers=%d: verdict stream differs", workers)
		}
	}
}

func TestFindVariantFeaturesWorkersZeroMeansAllCores(t *testing.T) {
	source, target := driftedData(200, 50, 12, 3)
	seq, _ := runSearch(t, source, target, 1)
	auto, _ := runSearch(t, source, target, 0)
	if !reflect.DeepEqual(seq, auto) {
		t.Error("Workers=0 result differs from sequential")
	}
}

func TestTopNeighborsMatchesSortReference(t *testing.T) {
	source, target := driftedData(250, 50, 20, 11)
	pooled, err := pooledFNodeMatrix(source, target, 20)
	if err != nil {
		t.Fatal(err)
	}
	tester, err := NewCITesterMatrix(pooled, 1)
	if err != nil {
		t.Fatal(err)
	}
	fNode := 20
	for _, k := range []int{1, 3, 5, 19, 50} {
		for x := 0; x < 20; x++ {
			got := topNeighbors(tester, x, fNode, k)
			want := referenceTopNeighbors(tester, x, fNode, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("x=%d k=%d: topNeighbors = %v; want %v", x, k, got, want)
			}
		}
	}
}

// referenceTopNeighbors is the straightforward full-sort implementation
// with the same deterministic tie-break (|r| descending, index ascending).
func referenceTopNeighbors(t *CITester, x, fNode, k int) []int {
	type scored struct {
		idx int
		r   float64
	}
	var all []scored
	for j := 0; j < fNode; j++ {
		if j == x {
			continue
		}
		r := t.corr.At(x, j)
		if r < 0 {
			r = -r
		}
		all = append(all, scored{j, r})
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].r > all[b].r })
	if k > len(all) {
		k = len(all)
	}
	if k <= 0 {
		return nil
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].idx
	}
	return out
}

func TestPooledFNodeMatrixLayout(t *testing.T) {
	source := [][]float64{{1, 2}, {3, 4}}
	target := [][]float64{{5, 6}}
	m, err := pooledFNodeMatrix(source, target, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := m.Dims(); r != 3 || c != 3 {
		t.Fatalf("dims = %dx%d; want 3x3", r, c)
	}
	want := [][]float64{{1, 2, 0}, {3, 4, 0}, {5, 6, 1}}
	for i := range want {
		for j := range want[i] {
			if m.At(i, j) != want[i][j] {
				t.Errorf("pooled[%d][%d] = %v; want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}
