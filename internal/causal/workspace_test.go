package causal

import (
	"math/rand"
	"testing"
)

// corrFixture builds a correlation matrix from correlated synthetic columns.
func corrFixture(t testing.TB, n, d int, seed int64) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	for i := range x {
		row := make([]float64, d)
		base := rng.NormFloat64()
		for j := range row {
			row[j] = 0.4*base + rng.NormFloat64()
		}
		x[i] = row
	}
	return x
}

// TestPartialCorrWorkspaceGolden pins the scratch-reusing partial
// correlation bit-for-bit against the allocating PartialCorr, reusing one
// workspace across conditioning sets of varying size (stale buffer contents
// must never leak into a result).
func TestPartialCorrWorkspaceGolden(t *testing.T) {
	x := corrFixture(t, 300, 9, 31)
	corr, err := CorrMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	ws := &ciWorkspace{}
	cases := [][]int{
		nil,
		{2},
		{2, 5, 7, 8},
		{3, 4},
		{1, 2, 3, 4, 5},
		{6},
		nil,
	}
	for ci, cond := range cases {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				want, wantErr := PartialCorr(corr, i, j, cond)
				got, gotErr := partialCorrWs(corr, i, j, cond, ws)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("case %d (%d,%d): error mismatch: %v vs %v", ci, i, j, wantErr, gotErr)
				}
				if got != want {
					t.Fatalf("case %d (%d,%d|%v): workspace %v != golden %v", ci, i, j, cond, got, want)
				}
			}
		}
	}
}

// TestPValueMemoConsistency checks that memoized and fresh evaluations of
// the same test agree exactly, across the memoable and non-memoable
// conditioning-set sizes.
func TestPValueMemoConsistency(t *testing.T) {
	x := corrFixture(t, 200, 8, 17)
	warm, err := NewCITester(x)
	if err != nil {
		t.Fatal(err)
	}
	conds := [][]int{nil, {3}, {3, 4}, {2, 3, 4, 5}, {1, 2, 3, 4, 5}}
	for _, cond := range conds {
		first, err := warm.PValue(0, 6, cond)
		if err != nil {
			t.Fatal(err)
		}
		second, err := warm.PValue(0, 6, cond)
		if err != nil {
			t.Fatal(err)
		}
		if first != second {
			t.Fatalf("cond %v: repeat PValue %v != first %v", cond, second, first)
		}
		fresh, err := NewCITester(x)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := fresh.PValue(0, 6, cond)
		if err != nil {
			t.Fatal(err)
		}
		if direct != first {
			t.Fatalf("cond %v: memoized %v != fresh tester %v", cond, first, direct)
		}
	}
}

// TestPValueDistinguishesCondSets guards the memo key: different
// conditioning sets (including prefixes of each other) must not collide.
func TestPValueDistinguishesCondSets(t *testing.T) {
	x := corrFixture(t, 200, 8, 23)
	tester, err := NewCITester(x)
	if err != nil {
		t.Fatal(err)
	}
	pA, err := tester.PValue(0, 6, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	pB, err := tester.PValue(0, 6, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	pC, err := tester.PValue(0, 6, []int{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := NewCITester(x)
	for _, tc := range []struct {
		cond []int
		p    float64
	}{{[]int{3}, pA}, {[]int{3, 4}, pB}, {[]int{4, 3}, pC}} {
		want, err := fresh.PValue(0, 6, tc.cond)
		if err != nil {
			t.Fatal(err)
		}
		if tc.p != want {
			t.Fatalf("cond %v: memoed tester %v != fresh %v", tc.cond, tc.p, want)
		}
	}
}

// pvalueAllocBudget is the pinned steady-state allocation budget for one
// CI test — both the memo-hit path and the pooled-workspace compute path
// are designed to allocate nothing.
const pvalueAllocBudget = 0.5

// TestPValueSteadyStateAllocs is the allocation-regression gate for the
// causal hot path; the CI bench gate runs it without the race detector.
func TestPValueSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	x := corrFixture(t, 200, 8, 29)
	tester, err := NewCITester(x)
	if err != nil {
		t.Fatal(err)
	}
	memoized := []int{1, 2}
	uncached := []int{1, 2, 3, 4, 5} // above memoMaxCond: always recomputed
	warm := func(cond []int) {
		if _, err := tester.PValue(0, 6, cond); err != nil {
			t.Fatal(err)
		}
	}
	warm(memoized)
	warm(uncached)
	warm(uncached)
	if avg := testing.AllocsPerRun(50, func() { warm(memoized) }); avg > pvalueAllocBudget {
		t.Errorf("memo-hit PValue allocates %.2f/op, budget %v", avg, pvalueAllocBudget)
	}
	if avg := testing.AllocsPerRun(50, func() { warm(uncached) }); avg > pvalueAllocBudget {
		t.Errorf("workspace PValue allocates %.2f/op, budget %v", avg, pvalueAllocBudget)
	}
}
