package causal

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkFindVariantFeatures measures the FS search — the paper's
// running-time driver (§VI-D) — sequential vs all-cores:
//
//	go test -bench FindVariantFeatures -benchtime 1x ./internal/causal
func BenchmarkFindVariantFeatures(b *testing.B) {
	source, target := driftedData(1200, 192, 64, 1)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := FindVariantFeatures(source, target, FNodeConfig{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Tests), "ci_tests")
			}
		})
	}
}
