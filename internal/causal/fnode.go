package causal

import (
	"fmt"
	"sort"

	"netdrift/internal/obs"
)

// FNodeConfig tunes the F-node variant-feature search.
type FNodeConfig struct {
	// Alpha is the CI-test significance level: a feature stays a variant
	// candidate only while every test rejects independence at this level.
	// Default 0.01.
	Alpha float64
	// ExonerationAlpha is the (stricter) threshold a conditional test must
	// clear to exonerate a candidate: the dependence on F must look
	// convincingly explained away (p >= ExonerationAlpha), not merely fail
	// a 1% rejection. This guards against finite-sample explain-away via
	// co-intervened sibling features. Default 0.25.
	ExonerationAlpha float64
	// MaxOrder bounds conditioning-set size (default 2).
	MaxOrder int
	// MaxNeighbors bounds the candidate parent pool per feature: the
	// features most correlated with it (default 5). The Ψ-FCI adaptation in
	// the paper likewise only explores direct relationships with the F-node
	// rather than the full graph (§VI-D).
	MaxNeighbors int
	// MarginalOnly skips the conditioning stage entirely — the behaviour of
	// weaker invariance baselines such as ICD in our setting.
	MarginalOnly bool
	// Obs, when non-nil, receives one event per CI test (with its
	// conditioning-set size) and one verdict per feature. Never serialized.
	Obs *obs.Observer `json:"-"`
}

func (c *FNodeConfig) applyDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.01
	}
	if c.ExonerationAlpha == 0 {
		c.ExonerationAlpha = 0.25
	}
	if c.MaxOrder == 0 {
		c.MaxOrder = 2
	}
	if c.MaxNeighbors == 0 {
		c.MaxNeighbors = 5
	}
}

// FNodeResult reports the variant-feature identification.
type FNodeResult struct {
	// Variant lists the identified domain-variant feature indices (sorted).
	Variant []int
	// Invariant lists the remaining feature indices (sorted).
	Invariant []int
	// MarginalP holds each feature's marginal p-value against the F-node.
	MarginalP []float64
	// Tests counts every CI test the search ran (marginal + conditional) —
	// the paper's running-time driver (§VI-D).
	Tests int
}

// FindVariantFeatures pools source (F=0) and target (F=1) samples, appends
// the F-node as an extra column, and runs the PC-style search restricted to
// the F-node's neighbourhood:
//
//  1. Features marginally independent of F (p >= Alpha) are invariant.
//  2. A remaining feature X is exonerated if some conditioning set S drawn
//     from X's most-correlated features satisfies X ⟂ F | S — i.e. the
//     dependence on the domain flows through other features rather than an
//     intervention on X itself.
//  3. Features never exonerated are the intervention targets: the
//     domain-variant features R with P_A(R|Pa(R)) ≠ P_C(R|Pa(R)).
func FindVariantFeatures(source, target [][]float64, cfg FNodeConfig) (*FNodeResult, error) {
	cfg.applyDefaults()
	if len(source) == 0 || len(target) == 0 {
		return nil, fmt.Errorf("%w: source %d, target %d rows", ErrNoData, len(source), len(target))
	}
	d := len(source[0])
	if d == 0 || len(target[0]) != d {
		return nil, fmt.Errorf("causal: width mismatch source %d target %d", d, len(target[0]))
	}

	// Pooled dataset with the F-node as column d.
	pooled := make([][]float64, 0, len(source)+len(target))
	for _, row := range source {
		r := make([]float64, d+1)
		copy(r, row)
		pooled = append(pooled, r)
	}
	for _, row := range target {
		r := make([]float64, d+1)
		copy(r, row)
		r[d] = 1
		pooled = append(pooled, r)
	}
	tester, err := NewCITester(pooled)
	if err != nil {
		return nil, err
	}
	fNode := d

	cfg.Obs.Counter(obs.MetricFSSearches).Inc()
	res := &FNodeResult{MarginalP: make([]float64, d)}
	var candidates []int
	for x := 0; x < d; x++ {
		p, err := tester.PValue(x, fNode, nil)
		if err != nil {
			return nil, fmt.Errorf("causal: marginal test feature %d: %w", x, err)
		}
		res.Tests++
		cfg.Obs.OnCITest(obs.CITest{X: x, Y: fNode, CondSize: 0, P: p})
		res.MarginalP[x] = p
		if p < cfg.Alpha {
			candidates = append(candidates, x)
		} else {
			res.Invariant = append(res.Invariant, x)
			cfg.Obs.OnVerdict(obs.FeatureVerdict{Feature: x, Variant: false, MarginalP: p})
		}
	}

	for _, x := range candidates {
		exonerated := false
		if !cfg.MarginalOnly {
			neighbors := topNeighbors(tester, x, fNode, cfg.MaxNeighbors)
			for _, cond := range subsetsUpTo(neighbors, cfg.MaxOrder) {
				p, err := tester.PValue(x, fNode, cond)
				if err != nil {
					return nil, fmt.Errorf("causal: conditional test feature %d: %w", x, err)
				}
				res.Tests++
				cfg.Obs.OnCITest(obs.CITest{X: x, Y: fNode, CondSize: len(cond), P: p})
				if p >= cfg.ExonerationAlpha {
					exonerated = true
					break
				}
			}
		}
		if exonerated {
			res.Invariant = append(res.Invariant, x)
		} else {
			res.Variant = append(res.Variant, x)
		}
		cfg.Obs.OnVerdict(obs.FeatureVerdict{
			Feature: x, Variant: !exonerated, Exonerated: exonerated, MarginalP: res.MarginalP[x],
		})
	}
	sort.Ints(res.Variant)
	sort.Ints(res.Invariant)
	return res, nil
}

// topNeighbors returns the k features most correlated with x (excluding x
// itself and the F-node), as candidate members of Pa(x).
func topNeighbors(t *CITester, x, fNode, k int) []int {
	type scored struct {
		idx int
		r   float64
	}
	d := fNode // features are 0..fNode-1
	all := make([]scored, 0, d-1)
	for j := 0; j < d; j++ {
		if j == x {
			continue
		}
		r := t.corr.At(x, j)
		if r < 0 {
			r = -r
		}
		all = append(all, scored{idx: j, r: r})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].r > all[b].r })
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].idx
	}
	return out
}

// subsetsUpTo enumerates all non-empty subsets of items with size <=
// maxSize, smallest first.
func subsetsUpTo(items []int, maxSize int) [][]int {
	var out [][]int
	n := len(items)
	if maxSize > n {
		maxSize = n
	}
	var rec func(start int, cur []int)
	for size := 1; size <= maxSize; size++ {
		size := size
		rec = func(start int, cur []int) {
			if len(cur) == size {
				out = append(out, append([]int(nil), cur...))
				return
			}
			for i := start; i < n; i++ {
				rec(i+1, append(cur, items[i]))
			}
		}
		rec(0, nil)
	}
	return out
}
