package causal

import (
	"fmt"
	"math"
	"sort"

	"netdrift/internal/mat"
	"netdrift/internal/obs"
	"netdrift/internal/par"
)

// FNodeConfig tunes the F-node variant-feature search.
type FNodeConfig struct {
	// Alpha is the CI-test significance level: a feature stays a variant
	// candidate only while every test rejects independence at this level.
	// Default 0.01.
	Alpha float64
	// ExonerationAlpha is the (stricter) threshold a conditional test must
	// clear to exonerate a candidate: the dependence on F must look
	// convincingly explained away (p >= ExonerationAlpha), not merely fail
	// a 1% rejection. This guards against finite-sample explain-away via
	// co-intervened sibling features. Default 0.25.
	ExonerationAlpha float64
	// MaxOrder bounds conditioning-set size (default 2).
	MaxOrder int
	// MaxNeighbors bounds the candidate parent pool per feature: the
	// features most correlated with it (default 5). The Ψ-FCI adaptation in
	// the paper likewise only explores direct relationships with the F-node
	// rather than the full graph (§VI-D).
	MaxNeighbors int
	// MarginalOnly skips the conditioning stage entirely — the behaviour of
	// weaker invariance baselines such as ICD in our setting.
	MarginalOnly bool
	// Workers bounds the goroutines used by the search: the pooled
	// covariance, the marginal fan-out across features, and the conditional
	// fan-out across candidates (with speculative subset evaluation when
	// candidates are scarce). <= 0 means runtime.GOMAXPROCS(0); 1 forces
	// the exact sequential path. The FNodeResult — Variant, Invariant,
	// MarginalP, and the Tests count — and the Obs event stream are
	// identical for every value (see DESIGN.md, "Determinism contract").
	Workers int
	// Obs, when non-nil, receives one event per CI test (with its
	// conditioning-set size) and one verdict per feature. Never serialized.
	Obs *obs.Observer `json:"-"`
}

func (c *FNodeConfig) applyDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.01
	}
	if c.ExonerationAlpha == 0 {
		c.ExonerationAlpha = 0.25
	}
	if c.MaxOrder == 0 {
		c.MaxOrder = 2
	}
	if c.MaxNeighbors == 0 {
		c.MaxNeighbors = 5
	}
}

// FNodeResult reports the variant-feature identification.
type FNodeResult struct {
	// Variant lists the identified domain-variant feature indices (sorted).
	Variant []int
	// Invariant lists the remaining feature indices (sorted).
	Invariant []int
	// MarginalP holds each feature's marginal p-value against the F-node.
	MarginalP []float64
	// Tests counts every CI test the search ran (marginal + conditional) —
	// the paper's running-time driver (§VI-D). Speculative tests evaluated
	// by the parallel search beyond the first exonerating conditioning set
	// are not counted, so the value matches the sequential search exactly.
	Tests int
}

// FindVariantFeatures pools source (F=0) and target (F=1) samples, appends
// the F-node as an extra column, and runs the PC-style search restricted to
// the F-node's neighbourhood:
//
//  1. Features marginally independent of F (p >= Alpha) are invariant.
//  2. A remaining feature X is exonerated if some conditioning set S drawn
//     from X's most-correlated features satisfies X ⟂ F | S — i.e. the
//     dependence on the domain flows through other features rather than an
//     intervention on X itself.
//  3. Features never exonerated are the intervention targets: the
//     domain-variant features R with P_A(R|Pa(R)) ≠ P_C(R|Pa(R)).
//
// The marginal tests fan out across features and the conditional stage fans
// out across candidates, bounded by cfg.Workers. Exoneration is decided by
// the first conditioning set in enumeration order whose test clears the
// threshold (first-exoneration-wins), regardless of which worker finished
// first, so results are bit-identical to the sequential search.
func FindVariantFeatures(source, target [][]float64, cfg FNodeConfig) (*FNodeResult, error) {
	cfg.applyDefaults()
	workers := par.Resolve(cfg.Workers)
	if len(source) == 0 || len(target) == 0 {
		return nil, fmt.Errorf("%w: source %d, target %d rows", ErrNoData, len(source), len(target))
	}
	d := len(source[0])
	if d == 0 || len(target[0]) != d {
		return nil, fmt.Errorf("causal: width mismatch source %d target %d", d, len(target[0]))
	}

	pooled, err := pooledFNodeMatrix(source, target, d)
	if err != nil {
		return nil, err
	}
	tester, err := NewCITesterMatrix(pooled, workers)
	if err != nil {
		return nil, err
	}
	fNode := d

	cfg.Obs.Counter(obs.MetricFSSearches).Inc()
	res := &FNodeResult{MarginalP: make([]float64, d)}

	// Stage 1 — marginal fan-out across features. P-values are computed in
	// parallel; counters, verdicts, and Obs events are then emitted in
	// feature order so the result and the event stream match the
	// sequential search.
	marg := make([]float64, d)
	margErr := make([]error, d)
	par.ForEach(workers, d, func(x int) {
		marg[x], margErr[x] = tester.PValue(x, fNode, nil)
	})
	var candidates []int
	for x := 0; x < d; x++ {
		if margErr[x] != nil {
			return nil, fmt.Errorf("causal: marginal test feature %d: %w", x, margErr[x])
		}
		p := marg[x]
		res.Tests++
		cfg.Obs.OnCITest(obs.CITest{X: x, Y: fNode, CondSize: 0, P: p})
		res.MarginalP[x] = p
		if p < cfg.Alpha {
			candidates = append(candidates, x)
		} else {
			res.Invariant = append(res.Invariant, x)
			cfg.Obs.OnVerdict(obs.FeatureVerdict{Feature: x, Variant: false, MarginalP: p})
		}
	}

	// Stage 2 — conditional fan-out across candidates. Each candidate's
	// counted tests are buffered and emitted in candidate order afterwards.
	// When candidates are scarcer than workers, each candidate evaluates
	// its conditioning sets speculatively in chunks; only the tests a
	// sequential scan would have run are kept.
	outcomes := make([]condOutcome, len(candidates))
	if !cfg.MarginalOnly && len(candidates) > 0 {
		innerWorkers := 1
		if len(candidates) < workers {
			innerWorkers = workers
		}
		par.ForEach(workers, len(candidates), func(ci int) {
			outcomes[ci] = evalConditionals(tester, candidates[ci], fNode, cfg, innerWorkers)
		})
	}
	for ci, x := range candidates {
		oc := outcomes[ci]
		for _, tst := range oc.tests {
			res.Tests++
			cfg.Obs.OnCITest(tst)
		}
		if oc.err != nil {
			return nil, fmt.Errorf("causal: conditional test feature %d: %w", x, oc.err)
		}
		if oc.exonerated {
			res.Invariant = append(res.Invariant, x)
		} else {
			res.Variant = append(res.Variant, x)
		}
		cfg.Obs.OnVerdict(obs.FeatureVerdict{
			Feature: x, Variant: !oc.exonerated, Exonerated: oc.exonerated, MarginalP: res.MarginalP[x],
		})
	}
	sort.Ints(res.Variant)
	sort.Ints(res.Invariant)
	return res, nil
}

// pooledFNodeMatrix assembles the pooled source+target dataset with the
// F-node (domain indicator) as the final column, in one backing allocation
// instead of one per row.
func pooledFNodeMatrix(source, target [][]float64, d int) (*mat.Matrix, error) {
	w := d + 1
	n := len(source) + len(target)
	data := make([]float64, n*w)
	for i, row := range source {
		copy(data[i*w:i*w+d], row)
	}
	base := len(source) * w
	for i, row := range target {
		off := base + i*w
		copy(data[off:off+d], row)
		data[off+d] = 1
	}
	return mat.Wrap(n, w, data)
}

// condOutcome is one candidate's conditional-stage result: whether some
// conditioning set exonerated it, and the CI tests a sequential scan would
// have counted (in enumeration order, ending at the first exoneration or
// error).
type condOutcome struct {
	exonerated bool
	tests      []obs.CITest
	err        error
}

// evalConditionals scans the candidate's conditioning sets for an
// exonerating one. With workers <= 1 the scan is strictly sequential with
// early exit; otherwise chunks of sets are evaluated speculatively in
// parallel and resolved in enumeration order, which yields the identical
// outcome and test count.
func evalConditionals(t *CITester, x, fNode int, cfg FNodeConfig, workers int) condOutcome {
	neighbors := topNeighbors(t, x, fNode, cfg.MaxNeighbors)
	if workers <= 1 {
		return evalConditionalsSeq(t, x, fNode, neighbors, cfg)
	}
	return evalConditionalsChunked(t, x, fNode, neighbors, cfg, workers)
}

func evalConditionalsSeq(t *CITester, x, fNode int, neighbors []int, cfg FNodeConfig) condOutcome {
	var oc condOutcome
	subsetsUpTo(neighbors, cfg.MaxOrder, func(cond []int) bool {
		p, err := t.PValue(x, fNode, cond)
		if err != nil {
			oc.err = err
			return false
		}
		oc.tests = append(oc.tests, obs.CITest{X: x, Y: fNode, CondSize: len(cond), P: p})
		if p >= cfg.ExonerationAlpha {
			oc.exonerated = true
			return false
		}
		return true
	})
	return oc
}

func evalConditionalsChunked(t *CITester, x, fNode int, neighbors []int, cfg FNodeConfig, workers int) condOutcome {
	var oc condOutcome
	chunkSize := 2 * workers
	chunk := make([][]int, 0, chunkSize)
	ps := make([]float64, chunkSize)
	errs := make([]error, chunkSize)
	// One flat backing array holds every buffered conditioning set; the
	// chunk entries are views into it, so buffering a set costs no
	// allocation after this point.
	condBuf := make([]int, chunkSize*cfg.MaxOrder)
	used := 0

	// flush evaluates the buffered sets in parallel, then resolves them in
	// enumeration order: the first exoneration or error terminates the scan
	// and the speculative results past it are discarded — exactly what the
	// sequential scan would have computed and counted.
	flush := func() (terminal bool) {
		par.ForEach(workers, len(chunk), func(i int) {
			ps[i], errs[i] = t.PValue(x, fNode, chunk[i])
		})
		for i := range chunk {
			if errs[i] != nil {
				oc.err = errs[i]
				return true
			}
			oc.tests = append(oc.tests, obs.CITest{X: x, Y: fNode, CondSize: len(chunk[i]), P: ps[i]})
			if ps[i] >= cfg.ExonerationAlpha {
				oc.exonerated = true
				return true
			}
		}
		chunk = chunk[:0]
		used = 0
		return false
	}

	done := false
	subsetsUpTo(neighbors, cfg.MaxOrder, func(cond []int) bool {
		dst := condBuf[used : used+len(cond) : used+len(cond)]
		copy(dst, cond)
		used += len(cond)
		chunk = append(chunk, dst)
		if len(chunk) == chunkSize {
			done = flush()
			return !done
		}
		return true
	})
	if !done && len(chunk) > 0 {
		flush()
	}
	return oc
}

// topNeighbors returns the k features most strongly correlated with x
// (excluding x itself and the F-node) as candidate members of Pa(x), via a
// single partial top-k selection pass — O(d·k) instead of a full O(d log d)
// sort. Ties on |r| break toward the lower feature index, making the
// neighbor order fully deterministic.
func topNeighbors(t *CITester, x, fNode, k int) []int {
	d := fNode // features are 0..fNode-1
	if k > d-1 {
		k = d - 1
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, 0, k)
	rs := make([]float64, 0, k)
	for j := 0; j < d; j++ {
		if j == x {
			continue
		}
		r := math.Abs(t.corr.At(x, j))
		if len(idx) == k && r <= rs[k-1] {
			continue
		}
		// Strictly-greater insertion keeps earlier (lower) indices ahead of
		// later ones on equal |r|.
		pos := len(rs)
		for pos > 0 && r > rs[pos-1] {
			pos--
		}
		if len(idx) < k {
			idx = append(idx, 0)
			rs = append(rs, 0)
		}
		copy(idx[pos+1:], idx[pos:])
		copy(rs[pos+1:], rs[pos:])
		idx[pos] = j
		rs[pos] = r
	}
	return idx
}

// subsetsUpTo invokes yield for every non-empty subset of items with size
// <= maxSize — sizes ascending, lexicographic by position within a size,
// the order the previous materializing implementation produced. Enumeration
// is lazy: it stops as soon as yield returns false, so a scan that
// exonerates on the first conditioning set allocates nothing beyond the
// shared buffer. The slice passed to yield is reused between calls and must
// not be retained.
func subsetsUpTo(items []int, maxSize int, yield func(cond []int) bool) {
	n := len(items)
	if maxSize > n {
		maxSize = n
	}
	buf := make([]int, 0, maxSize)
	for size := 1; size <= maxSize; size++ {
		if !yieldSubsets(items, size, 0, buf, yield) {
			return
		}
	}
}

// yieldSubsets extends cur with elements of items[start:] up to size and
// reports whether enumeration should continue.
func yieldSubsets(items []int, size, start int, cur []int, yield func([]int) bool) bool {
	if len(cur) == size {
		return yield(cur)
	}
	for i := start; i < len(items); i++ {
		if !yieldSubsets(items, size, i+1, append(cur, items[i]), yield) {
			return false
		}
	}
	return true
}
