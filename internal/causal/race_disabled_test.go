//go:build !race

package causal

const raceEnabled = false
