package causal

import "fmt"

// EdgeMark is the orientation state of a directed mark in a CPDAG.
type EdgeMark int

// Edge marks in the partially directed graph.
const (
	MarkNone EdgeMark = iota // no edge
	MarkUndirected
	MarkDirected // tail at i, arrowhead at j for Dir[i][j]
)

// CPDAG is a completed partially directed acyclic graph: the output of the
// PC orientation phase. Edge (i, j) is represented as:
//
//   - undirected:  Undirected[i][j] == Undirected[j][i] == true
//   - directed i→j: Directed[i][j] == true
type CPDAG struct {
	Undirected [][]bool
	Directed   [][]bool
}

// NumNodes returns the graph's node count.
func (g *CPDAG) NumNodes() int { return len(g.Undirected) }

// HasEdge reports whether any edge (directed either way or undirected)
// joins i and j.
func (g *CPDAG) HasEdge(i, j int) bool {
	return g.Undirected[i][j] || g.Directed[i][j] || g.Directed[j][i]
}

// Parents returns the nodes with a directed edge into x.
func (g *CPDAG) Parents(x int) []int {
	var out []int
	for i := range g.Directed {
		if g.Directed[i][x] {
			out = append(out, i)
		}
	}
	return out
}

// OrientSkeleton applies the PC orientation phase to a learned skeleton:
// v-structures from the separating sets, then Meek's rules 1-3 to
// propagate orientations without creating cycles or new v-structures.
// sepsets maps unordered pairs (key via SepKey) to a separating set found
// during skeleton search; pairs without an entry are treated as never
// separated.
func OrientSkeleton(sk *Skeleton, sepsets map[[2]int][]int) (*CPDAG, error) {
	if sk == nil || len(sk.Adj) == 0 {
		return nil, fmt.Errorf("causal: empty skeleton")
	}
	d := len(sk.Adj)
	g := &CPDAG{
		Undirected: make([][]bool, d),
		Directed:   make([][]bool, d),
	}
	for i := range g.Undirected {
		g.Undirected[i] = make([]bool, d)
		g.Directed[i] = make([]bool, d)
		copy(g.Undirected[i], sk.Adj[i])
	}

	// v-structures: for each unshielded triple i - k - j with i, j non-
	// adjacent, orient i→k←j iff k is not in sepset(i, j).
	for k := 0; k < d; k++ {
		for i := 0; i < d; i++ {
			if i == k || !sk.Adj[i][k] {
				continue
			}
			for j := i + 1; j < d; j++ {
				if j == k || !sk.Adj[j][k] || sk.Adj[i][j] {
					continue
				}
				sep, ok := sepsets[SepKey(i, j)]
				if ok && containsInt(sep, k) {
					continue
				}
				orient(g, i, k)
				orient(g, j, k)
			}
		}
	}

	// Meek rules, applied to a fixed point.
	for changed := true; changed; {
		changed = false
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				if !g.Undirected[i][j] {
					continue
				}
				if meekApplies(g, i, j) {
					orient(g, i, j)
					changed = true
				}
			}
		}
	}
	return g, nil
}

// SepKey normalizes an unordered node pair into a map key.
func SepKey(i, j int) [2]int {
	if i > j {
		i, j = j, i
	}
	return [2]int{i, j}
}

func orient(g *CPDAG, from, to int) {
	if g.Directed[to][from] {
		// Conflicting v-structure evidence: leave the earlier orientation
		// (standard conservative resolution).
		return
	}
	g.Undirected[from][to] = false
	g.Undirected[to][from] = false
	g.Directed[from][to] = true
}

// meekApplies reports whether any of Meek's rules 1-3 orient i→j.
func meekApplies(g *CPDAG, i, j int) bool {
	d := g.NumNodes()
	// Rule 1: k→i and k, j non-adjacent ⇒ i→j (else new v-structure).
	for k := 0; k < d; k++ {
		if g.Directed[k][i] && !g.HasEdge(k, j) {
			return true
		}
	}
	// Rule 2: directed path i→k→j ⇒ i→j (else cycle).
	for k := 0; k < d; k++ {
		if g.Directed[i][k] && g.Directed[k][j] {
			return true
		}
	}
	// Rule 3: i - k, i - l, k→j, l→j, k and l non-adjacent ⇒ i→j.
	for k := 0; k < d; k++ {
		if !g.Undirected[i][k] || !g.Directed[k][j] {
			continue
		}
		for l := k + 1; l < d; l++ {
			if g.Undirected[i][l] && g.Directed[l][j] && !g.HasEdge(k, l) {
				return true
			}
		}
	}
	return false
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// PCWithOrientation runs the order-limited PC skeleton search, records
// separating sets, and applies the orientation phase — the full (order-
// limited) PC algorithm the paper's FS method specializes (§V-A2).
func PCWithOrientation(x [][]float64, cfg PCConfig) (*CPDAG, error) {
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.01
	}
	if cfg.MaxOrder == 0 {
		cfg.MaxOrder = 2
	}
	tester, err := NewCITester(x)
	if err != nil {
		return nil, err
	}
	d := len(x[0])
	sk := &Skeleton{Adj: make([][]bool, d)}
	for i := range sk.Adj {
		sk.Adj[i] = make([]bool, d)
		for j := range sk.Adj[i] {
			sk.Adj[i][j] = i != j
		}
	}
	sepsets := make(map[[2]int][]int)

	for order := 0; order <= cfg.MaxOrder; order++ {
		type removal struct {
			i, j int
			sep  []int
		}
		var removals []removal
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if !sk.Adj[i][j] {
					continue
				}
				pool := neighborsExcluding(sk, i, j)
				if len(pool) < order {
					continue
				}
				sep, found, err := findSeparator(tester, i, j, pool, order, cfg.Alpha)
				if err != nil {
					return nil, fmt.Errorf("causal: pc edge (%d,%d): %w", i, j, err)
				}
				if found {
					removals = append(removals, removal{i, j, sep})
				}
			}
		}
		for _, r := range removals {
			sk.Adj[r.i][r.j] = false
			sk.Adj[r.j][r.i] = false
			sepsets[SepKey(r.i, r.j)] = r.sep
		}
	}
	return OrientSkeleton(sk, sepsets)
}

// findSeparator is trySeparate returning the separating set itself.
func findSeparator(t *CITester, i, j int, pool []int, order int, alpha float64) ([]int, bool, error) {
	if order == 0 {
		p, err := t.PValue(i, j, nil)
		if err != nil {
			return nil, false, err
		}
		return []int{}, p >= alpha, nil
	}
	idx := make([]int, order)
	var rec func(start, depth int) ([]int, bool, error)
	rec = func(start, depth int) ([]int, bool, error) {
		if depth == order {
			cond := make([]int, order)
			for k, pi := range idx {
				cond[k] = pool[pi]
			}
			p, err := t.PValue(i, j, cond)
			if err != nil {
				return nil, false, err
			}
			if p >= alpha {
				return cond, true, nil
			}
			return nil, false, nil
		}
		for s := start; s < len(pool); s++ {
			idx[depth] = s
			sep, ok, err := rec(s+1, depth+1)
			if err != nil || ok {
				return sep, ok, err
			}
		}
		return nil, false, nil
	}
	return rec(0, 0)
}
