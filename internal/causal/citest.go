// Package causal implements the constraint-based causal machinery behind
// the paper's FS method: Fisher-z conditional-independence tests on a
// pooled source+target dataset augmented with an F-node (domain indicator),
// and the PC-style neighbourhood search that identifies soft-intervention
// targets — the domain-variant features (§V-A). A generic order-limited PC
// skeleton search is included for causal-graph exploration.
package causal

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"netdrift/internal/mat"
	"netdrift/internal/stats"
)

// CorrMatrix computes the Pearson correlation matrix of the columns of x.
func CorrMatrix(x [][]float64) (*mat.Matrix, error) {
	m, err := mat.FromRows(x)
	if err != nil {
		return nil, err
	}
	cov, err := mat.Covariance(m)
	if err != nil {
		return nil, err
	}
	return mat.CorrelationFromCov(cov), nil
}

// PartialCorr computes the partial correlation between variables i and j
// given the conditioning set cond, from a full correlation matrix. It uses
// the precision-matrix identity ρ_{ij·S} = -P_ij / sqrt(P_ii P_jj) over the
// submatrix restricted to {i, j} ∪ S.
func PartialCorr(corr *mat.Matrix, i, j int, cond []int) (float64, error) {
	if i == j {
		return 1, nil
	}
	if len(cond) == 0 {
		return corr.At(i, j), nil
	}
	idx := make([]int, 0, 2+len(cond))
	idx = append(idx, i, j)
	idx = append(idx, cond...)
	sub, err := corr.SubMatrix(idx, idx)
	if err != nil {
		return 0, err
	}
	// Ridge for numerical safety with nearly collinear telemetry columns.
	for k := 0; k < len(idx); k++ {
		sub.Set(k, k, sub.At(k, k)+1e-8)
	}
	prec, err := mat.Inverse(sub)
	if err != nil {
		return 0, fmt.Errorf("causal: precision of conditioning set: %w", err)
	}
	den := prec.At(0, 0) * prec.At(1, 1)
	if den <= 0 {
		return 0, nil
	}
	r := -prec.At(0, 1) / math.Sqrt(den)
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return r, nil
}

// ciWorkspace holds the scratch buffers for one partial-correlation
// evaluation: the index set, the conditioning submatrix, the Gaussian
// elimination working copies, and the precision matrix. Workspaces are
// checked out of a per-tester sync.Pool so concurrent PValue callers (e.g.
// par.ForEach workers in FindVariantFeatures) each reuse their own buffers
// without racing.
type ciWorkspace struct {
	idx                      []int
	sub, ident, aw, bw, prec mat.Matrix
}

// partialCorrWs is PartialCorr evaluated in a caller-owned workspace. The
// arithmetic is identical to PartialCorr (pinned by the golden test in
// citest_test.go); only the buffer lifetimes differ.
func partialCorrWs(corr *mat.Matrix, i, j int, cond []int, ws *ciWorkspace) (float64, error) {
	if i == j {
		return 1, nil
	}
	if len(cond) == 0 {
		return corr.At(i, j), nil
	}
	if cap(ws.idx) < 2+len(cond) {
		ws.idx = make([]int, 0, 2+len(cond))
	}
	ws.idx = append(ws.idx[:0], i, j)
	ws.idx = append(ws.idx, cond...)
	sub, err := corr.SubMatrixInto(&ws.sub, ws.idx, ws.idx)
	if err != nil {
		return 0, err
	}
	// Ridge for numerical safety with nearly collinear telemetry columns.
	for k := 0; k < len(ws.idx); k++ {
		sub.Set(k, k, sub.At(k, k)+1e-8)
	}
	prec, err := mat.InverseInto(sub, &ws.ident, &ws.aw, &ws.bw, &ws.prec)
	if err != nil {
		return 0, fmt.Errorf("causal: precision of conditioning set: %w", err)
	}
	den := prec.At(0, 0) * prec.At(1, 1)
	if den <= 0 {
		return 0, nil
	}
	r := -prec.At(0, 1) / math.Sqrt(den)
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return r, nil
}

// memoMaxCond bounds the conditioning-set size held in the p-value memo key
// (the PC-style searches here are order-limited well below it; larger sets
// bypass the memo rather than allocate variable-length keys).
const memoMaxCond = 4

// citKey identifies one CI test exactly as issued — i, j, and the
// conditioning set in call order — so a memo hit returns the identical
// float the recomputation would have produced.
type citKey struct {
	i, j  int32
	nCond int32
	cond  [memoMaxCond]int32
}

// CITester runs Fisher-z conditional-independence tests against a fixed
// dataset's correlation matrix. Repeated tests are served from a p-value
// memo (PC-style searches re-issue the same test across conditioning
// orders), and each evaluation runs in a pooled scratch workspace, so
// steady-state testing allocates nothing. Safe for concurrent use.
type CITester struct {
	corr *mat.Matrix
	n    int

	pool sync.Pool // *ciWorkspace
	mu   sync.RWMutex
	memo map[citKey]float64
}

// ErrNoData is returned when a tester is built from an empty dataset.
var ErrNoData = errors.New("causal: empty dataset")

// NewCITester precomputes the correlation structure of x (rows = samples).
func NewCITester(x [][]float64) (*CITester, error) {
	if len(x) < 4 {
		return nil, fmt.Errorf("%w: need >= 4 samples, have %d", ErrNoData, len(x))
	}
	m, err := mat.FromRows(x)
	if err != nil {
		return nil, err
	}
	return NewCITesterMatrix(m, 1)
}

// NewCITesterMatrix precomputes the correlation structure of a sample
// matrix (rows = samples) without the [][]float64 conversion, using up to
// workers goroutines for the covariance accumulation. The correlation
// matrix is bit-identical for every worker count.
func NewCITesterMatrix(x *mat.Matrix, workers int) (*CITester, error) {
	if x.Rows() < 4 {
		return nil, fmt.Errorf("%w: need >= 4 samples, have %d", ErrNoData, x.Rows())
	}
	cov, err := mat.CovarianceWorkers(x, workers)
	if err != nil {
		return nil, err
	}
	t := &CITester{
		corr: mat.CorrelationFromCov(cov),
		n:    x.Rows(),
		memo: make(map[citKey]float64),
	}
	t.pool.New = func() any { return &ciWorkspace{} }
	return t, nil
}

// PValue returns the Fisher-z two-sided p-value for the hypothesis
// X_i ⟂ X_j | X_cond. Results are memoized per exact (i, j, cond) triple;
// concurrent callers may race to compute the same entry, which is harmless
// because the evaluation is deterministic.
func (t *CITester) PValue(i, j int, cond []int) (float64, error) {
	memoable := len(cond) <= memoMaxCond
	var key citKey
	if memoable {
		key.i, key.j = int32(i), int32(j)
		key.nCond = int32(len(cond))
		for k, c := range cond {
			key.cond[k] = int32(c)
		}
		t.mu.RLock()
		p, ok := t.memo[key]
		t.mu.RUnlock()
		if ok {
			return p, nil
		}
	}
	ws, _ := t.pool.Get().(*ciWorkspace)
	if ws == nil {
		ws = &ciWorkspace{}
	}
	r, err := partialCorrWs(t.corr, i, j, cond, ws)
	t.pool.Put(ws)
	if err != nil {
		return 0, err
	}
	p := stats.FisherZPValue(r, t.n, len(cond))
	if memoable {
		t.mu.Lock()
		if t.memo == nil {
			t.memo = make(map[citKey]float64)
		}
		t.memo[key] = p
		t.mu.Unlock()
	}
	return p, nil
}

// Corr exposes the underlying correlation matrix (read-only use).
func (t *CITester) Corr() *mat.Matrix { return t.corr }

// N returns the sample count the tester was built from.
func (t *CITester) N() int { return t.n }
