// Package causal implements the constraint-based causal machinery behind
// the paper's FS method: Fisher-z conditional-independence tests on a
// pooled source+target dataset augmented with an F-node (domain indicator),
// and the PC-style neighbourhood search that identifies soft-intervention
// targets — the domain-variant features (§V-A). A generic order-limited PC
// skeleton search is included for causal-graph exploration.
package causal

import (
	"errors"
	"fmt"
	"math"

	"netdrift/internal/mat"
	"netdrift/internal/stats"
)

// CorrMatrix computes the Pearson correlation matrix of the columns of x.
func CorrMatrix(x [][]float64) (*mat.Matrix, error) {
	m, err := mat.FromRows(x)
	if err != nil {
		return nil, err
	}
	cov, err := mat.Covariance(m)
	if err != nil {
		return nil, err
	}
	return mat.CorrelationFromCov(cov), nil
}

// PartialCorr computes the partial correlation between variables i and j
// given the conditioning set cond, from a full correlation matrix. It uses
// the precision-matrix identity ρ_{ij·S} = -P_ij / sqrt(P_ii P_jj) over the
// submatrix restricted to {i, j} ∪ S.
func PartialCorr(corr *mat.Matrix, i, j int, cond []int) (float64, error) {
	if i == j {
		return 1, nil
	}
	if len(cond) == 0 {
		return corr.At(i, j), nil
	}
	idx := make([]int, 0, 2+len(cond))
	idx = append(idx, i, j)
	idx = append(idx, cond...)
	sub, err := corr.SubMatrix(idx, idx)
	if err != nil {
		return 0, err
	}
	// Ridge for numerical safety with nearly collinear telemetry columns.
	for k := 0; k < len(idx); k++ {
		sub.Set(k, k, sub.At(k, k)+1e-8)
	}
	prec, err := mat.Inverse(sub)
	if err != nil {
		return 0, fmt.Errorf("causal: precision of conditioning set: %w", err)
	}
	den := prec.At(0, 0) * prec.At(1, 1)
	if den <= 0 {
		return 0, nil
	}
	r := -prec.At(0, 1) / math.Sqrt(den)
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return r, nil
}

// CITester runs Fisher-z conditional-independence tests against a fixed
// dataset's correlation matrix.
type CITester struct {
	corr *mat.Matrix
	n    int
}

// ErrNoData is returned when a tester is built from an empty dataset.
var ErrNoData = errors.New("causal: empty dataset")

// NewCITester precomputes the correlation structure of x (rows = samples).
func NewCITester(x [][]float64) (*CITester, error) {
	if len(x) < 4 {
		return nil, fmt.Errorf("%w: need >= 4 samples, have %d", ErrNoData, len(x))
	}
	m, err := mat.FromRows(x)
	if err != nil {
		return nil, err
	}
	return NewCITesterMatrix(m, 1)
}

// NewCITesterMatrix precomputes the correlation structure of a sample
// matrix (rows = samples) without the [][]float64 conversion, using up to
// workers goroutines for the covariance accumulation. The correlation
// matrix is bit-identical for every worker count.
func NewCITesterMatrix(x *mat.Matrix, workers int) (*CITester, error) {
	if x.Rows() < 4 {
		return nil, fmt.Errorf("%w: need >= 4 samples, have %d", ErrNoData, x.Rows())
	}
	cov, err := mat.CovarianceWorkers(x, workers)
	if err != nil {
		return nil, err
	}
	return &CITester{corr: mat.CorrelationFromCov(cov), n: x.Rows()}, nil
}

// PValue returns the Fisher-z two-sided p-value for the hypothesis
// X_i ⟂ X_j | X_cond.
func (t *CITester) PValue(i, j int, cond []int) (float64, error) {
	r, err := PartialCorr(t.corr, i, j, cond)
	if err != nil {
		return 0, err
	}
	return stats.FisherZPValue(r, t.n, len(cond)), nil
}

// Corr exposes the underlying correlation matrix (read-only use).
func (t *CITester) Corr() *mat.Matrix { return t.corr }

// N returns the sample count the tester was built from.
func (t *CITester) N() int { return t.n }
