package causal

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"netdrift/internal/dataset"
	"netdrift/internal/scm"
)

func TestPartialCorrChain(t *testing.T) {
	// X -> Y -> Z: corr(X,Z) != 0 but partial corr(X,Z | Y) ~ 0.
	rng := rand.New(rand.NewSource(1))
	n := 3000
	x := make([][]float64, n)
	for i := range x {
		a := rng.NormFloat64()
		b := 2*a + 0.3*rng.NormFloat64()
		c := -b + 0.3*rng.NormFloat64()
		x[i] = []float64{a, b, c}
	}
	corr, err := CorrMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	marg, err := PartialCorr(corr, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(marg) < 0.8 {
		t.Errorf("marginal corr(X,Z) = %v; want strong", marg)
	}
	part, err := PartialCorr(corr, 0, 2, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(part) > 0.1 {
		t.Errorf("partial corr(X,Z|Y) = %v; want ~0", part)
	}
}

func TestPartialCorrSelf(t *testing.T) {
	corr, _ := CorrMatrix([][]float64{{1, 2}, {2, 1}, {3, 3}, {0, 1}})
	r, err := PartialCorr(corr, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("self partial corr = %v; want 1", r)
	}
}

func TestCITester(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 800
	x := make([][]float64, n)
	for i := range x {
		a := rng.NormFloat64()
		x[i] = []float64{a, a + 0.1*rng.NormFloat64(), rng.NormFloat64()}
	}
	tester, err := NewCITester(x)
	if err != nil {
		t.Fatal(err)
	}
	if tester.N() != n {
		t.Errorf("N = %d; want %d", tester.N(), n)
	}
	pDep, err := tester.PValue(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pDep > 1e-10 {
		t.Errorf("p-value for dependent pair = %v; want ~0", pDep)
	}
	pInd, err := tester.PValue(0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pInd < 0.01 {
		t.Errorf("p-value for independent pair = %v; want > 0.01", pInd)
	}
}

func TestNewCITesterTooFewSamples(t *testing.T) {
	if _, err := NewCITester([][]float64{{1, 2}}); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v; want ErrNoData", err)
	}
}

// buildShiftScenario samples a small SCM observationally and under soft
// interventions on known targets.
func buildShiftScenario(t *testing.T, nSrc, nTgt int, seed int64) (src, tgt [][]float64, targets []int) {
	t.Helper()
	model, err := scm.RandomModel(scm.RandomConfig{NumFeatures: 20, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	// Intervene on leaf-ish nodes: pick targets without descendants among
	// later nodes by taking nodes whose index never appears as a parent.
	hasChild := make([]bool, 20)
	for _, nd := range model.Nodes {
		for _, p := range nd.Parents {
			hasChild[p] = true
		}
	}
	var leaves []int
	for i, hc := range hasChild {
		if !hc {
			leaves = append(leaves, i)
		}
	}
	if len(leaves) < 3 {
		t.Fatalf("model has too few leaves: %v", leaves)
	}
	var ivs []scm.Intervention
	for _, l := range leaves[:3] {
		ivs = append(ivs, scm.Intervention{Target: l, Kind: scm.MeanShift, Amount: 3})
	}
	src, err = model.Sample(scm.SampleConfig{N: nSrc, Rng: rand.New(rand.NewSource(seed + 1))})
	if err != nil {
		t.Fatal(err)
	}
	tgt, err = model.Sample(scm.SampleConfig{N: nTgt, Interventions: ivs, Rng: rand.New(rand.NewSource(seed + 2))})
	if err != nil {
		t.Fatal(err)
	}
	return src, tgt, scm.Targets(ivs)
}

func TestFindVariantFeaturesRecoversTargets(t *testing.T) {
	src, tgt, targets := buildShiftScenario(t, 1500, 300, 7)
	res, err := FindVariantFeatures(src, tgt, FNodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, v := range res.Variant {
		found[v] = true
	}
	for _, want := range targets {
		if !found[want] {
			t.Errorf("true target %d not identified; variant = %v", want, res.Variant)
		}
	}
	// Precision: at most a couple of false positives on 17 invariant
	// features at alpha=0.01.
	if extras := len(res.Variant) - len(targets); extras > 2 {
		t.Errorf("%d false-positive variant features: %v (targets %v)", extras, res.Variant, targets)
	}
	if len(res.Variant)+len(res.Invariant) != 20 {
		t.Error("variant + invariant must partition the features")
	}
}

func TestFindVariantFeaturesFewShotPower(t *testing.T) {
	// Detection count grows with target sample size (paper §VI-C).
	var counts []int
	for _, nTgt := range []int{12, 60, 300} {
		src, tgt, _ := buildShiftScenario(t, 1500, nTgt, 11)
		res, err := FindVariantFeatures(src, tgt, FNodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, len(res.Variant))
	}
	if counts[0] > counts[2] {
		t.Errorf("variant count should not shrink with more target data: %v", counts)
	}
	if counts[2] == 0 {
		t.Error("no variant features found with 300 target samples")
	}
}

func TestFindVariantFeaturesNoShift(t *testing.T) {
	// Same distribution in both domains: nearly nothing should be flagged.
	model, err := scm.RandomModel(scm.RandomConfig{NumFeatures: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := model.Sample(scm.SampleConfig{N: 1000, Rng: rand.New(rand.NewSource(4))})
	tgt, _ := model.Sample(scm.SampleConfig{N: 200, Rng: rand.New(rand.NewSource(5))})
	res, err := FindVariantFeatures(src, tgt, FNodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variant) > 1 {
		t.Errorf("false positives without shift: %v", res.Variant)
	}
}

func TestFindVariantFeaturesErrors(t *testing.T) {
	if _, err := FindVariantFeatures(nil, [][]float64{{1}}, FNodeConfig{}); err == nil {
		t.Error("expected error for empty source")
	}
	if _, err := FindVariantFeatures([][]float64{{1, 2}}, [][]float64{{1}}, FNodeConfig{}); err == nil {
		t.Error("expected error for width mismatch")
	}
}

func TestMarginalOnlyFlagsDescendants(t *testing.T) {
	// Chain X0 -> X1 -> X2 with intervention on X0: marginal-only flags the
	// whole chain; the conditional search exonerates the descendants.
	model := &scm.Model{Nodes: []scm.Node{
		{NL: scm.Linear, NoiseStd: 1},
		{Parents: []int{0}, Weights: []float64{1.5}, NL: scm.Linear, NoiseStd: 0.4},
		{Parents: []int{1}, Weights: []float64{1.2}, NL: scm.Linear, NoiseStd: 0.4},
		{NL: scm.Linear, NoiseStd: 1}, // unrelated
	}}
	ivs := []scm.Intervention{{Target: 0, Kind: scm.MeanShift, Amount: 4}}
	src, err := model.Sample(scm.SampleConfig{N: 2000, Rng: rand.New(rand.NewSource(6))})
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := model.Sample(scm.SampleConfig{N: 500, Interventions: ivs, Rng: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}

	marg, err := FindVariantFeatures(src, tgt, FNodeConfig{MarginalOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(marg.Variant) < 3 {
		t.Errorf("marginal-only should flag the full chain, got %v", marg.Variant)
	}

	cond, err := FindVariantFeatures(src, tgt, FNodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(cond.Variant, 0) {
		t.Errorf("conditional search must keep the true target 0: %v", cond.Variant)
	}
	if contains(cond.Variant, 2) {
		t.Errorf("conditional search should exonerate descendant 2: %v", cond.Variant)
	}
}

func TestFindVariantOn5GCGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("5GC-scale FS test skipped in -short mode")
	}
	d, err := dataset.Synthetic5GC(dataset.FiveGCConfig{
		Seed: 13, SourceSamples: 800, TargetTrainPool: 160, TargetTestSamples: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := FindVariantFeatures(d.Source.X, d.TargetTrain.X, FNodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	truth := map[int]bool{}
	for _, v := range d.TrueVariant {
		truth[v] = true
	}
	var tp int
	for _, v := range res.Variant {
		if truth[v] {
			tp++
		}
	}
	recall := float64(tp) / float64(len(d.TrueVariant))
	precision := 0.0
	if len(res.Variant) > 0 {
		precision = float64(tp) / float64(len(res.Variant))
	}
	if recall < 0.5 {
		t.Errorf("recall = %.2f (found %d of %d); want >= 0.5", recall, tp, len(d.TrueVariant))
	}
	if precision < 0.7 {
		t.Errorf("precision = %.2f; want >= 0.7", precision)
	}
	t.Logf("5GC FS: %d variant found, recall %.2f precision %.2f", len(res.Variant), recall, precision)
}

func TestPCSkeletonChain(t *testing.T) {
	// X0 -> X1 -> X2: PC should keep edges (0,1), (1,2) and drop (0,2).
	rng := rand.New(rand.NewSource(8))
	n := 3000
	x := make([][]float64, n)
	for i := range x {
		a := rng.NormFloat64()
		b := 1.5*a + 0.4*rng.NormFloat64()
		c := 1.2*b + 0.4*rng.NormFloat64()
		x[i] = []float64{a, b, c}
	}
	sk, err := PCSkeleton(x, PCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !sk.Adj[0][1] || !sk.Adj[1][2] {
		t.Error("chain edges missing")
	}
	if sk.Adj[0][2] {
		t.Error("transitive edge (0,2) should be removed by conditioning on 1")
	}
	if sk.NumEdges() != 2 {
		t.Errorf("edges = %d; want 2", sk.NumEdges())
	}
	if n := sk.Neighbors(1); len(n) != 2 {
		t.Errorf("neighbors of 1 = %v; want [0 2]", n)
	}
}

func TestPCSkeletonIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 1500
	x := make([][]float64, n)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	sk, err := PCSkeleton(x, PCConfig{Alpha: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if sk.NumEdges() != 0 {
		t.Errorf("independent data has %d edges; want 0", sk.NumEdges())
	}
}

func TestSubsetsUpTo(t *testing.T) {
	var got [][]int
	subsetsUpTo([]int{1, 2, 3}, 2, func(cond []int) bool {
		got = append(got, append([]int(nil), cond...))
		return true
	})
	// 3 singletons + 3 pairs, sizes ascending, lexicographic within a size.
	want := [][]int{{1}, {2}, {3}, {1, 2}, {1, 3}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("subsets = %v; want %v", got, want)
	}
	n := 0
	subsetsUpTo(nil, 2, func([]int) bool { n++; return true })
	if n != 0 {
		t.Error("empty pool should have no subsets")
	}
	// Lazy enumeration must stop as soon as yield returns false.
	n = 0
	subsetsUpTo([]int{1, 2, 3, 4, 5}, 3, func([]int) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("enumeration continued after stop: %d yields", n)
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
