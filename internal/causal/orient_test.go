package causal

import (
	"math/rand"
	"testing"
)

func TestOrientCollider(t *testing.T) {
	// Ground truth: X0 → X2 ← X1 (collider), X0 ⟂ X1 marginally.
	rng := rand.New(rand.NewSource(1))
	n := 4000
	x := make([][]float64, n)
	for i := range x {
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		c := a + b + 0.4*rng.NormFloat64()
		x[i] = []float64{a, b, c}
	}
	g, err := PCWithOrientation(x, PCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed[0][2] || !g.Directed[1][2] {
		t.Errorf("collider not oriented: directed=%v", g.Directed)
	}
	if g.HasEdge(0, 1) {
		t.Error("spurious edge between independent causes")
	}
	parents := g.Parents(2)
	if len(parents) != 2 {
		t.Errorf("Parents(2) = %v; want [0 1]", parents)
	}
}

func TestOrientChainStaysPartiallyUndirected(t *testing.T) {
	// X0 → X1 → X2 is Markov-equivalent to its reversals: PC cannot orient
	// it and must return an undirected chain (no false v-structure).
	rng := rand.New(rand.NewSource(2))
	n := 4000
	x := make([][]float64, n)
	for i := range x {
		a := rng.NormFloat64()
		b := 1.4*a + 0.5*rng.NormFloat64()
		c := 1.2*b + 0.5*rng.NormFloat64()
		x[i] = []float64{a, b, c}
	}
	g, err := PCWithOrientation(x, PCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Undirected[0][1] || !g.Undirected[1][2] {
		t.Errorf("chain edges should stay undirected: undirected=%v directed=%v",
			g.Undirected, g.Directed)
	}
	if g.HasEdge(0, 2) {
		t.Error("transitive edge survived")
	}
}

func TestMeekRule1Propagation(t *testing.T) {
	// Collider X0 → X2 ← X1, plus X2 - X3: rule 1 orients X2 → X3
	// (otherwise X0 → X2 - X3 would hide a new v-structure).
	rng := rand.New(rand.NewSource(3))
	n := 5000
	x := make([][]float64, n)
	for i := range x {
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		c := a + b + 0.4*rng.NormFloat64()
		e := 1.3*c + 0.5*rng.NormFloat64()
		x[i] = []float64{a, b, c, e}
	}
	g, err := PCWithOrientation(x, PCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed[2][3] {
		t.Errorf("Meek rule 1 should orient 2→3; directed=%v undirected=%v",
			g.Directed, g.Undirected)
	}
}

func TestOrientSkeletonEmpty(t *testing.T) {
	if _, err := OrientSkeleton(nil, nil); err == nil {
		t.Error("expected error for nil skeleton")
	}
	if _, err := OrientSkeleton(&Skeleton{}, nil); err == nil {
		t.Error("expected error for empty skeleton")
	}
}

func TestSepKey(t *testing.T) {
	if SepKey(3, 1) != SepKey(1, 3) {
		t.Error("SepKey must be order-independent")
	}
	if SepKey(1, 3) != [2]int{1, 3} {
		t.Error("SepKey must normalize to ascending order")
	}
}

func TestCPDAGAccessors(t *testing.T) {
	g := &CPDAG{
		Undirected: [][]bool{{false, true}, {true, false}},
		Directed:   [][]bool{{false, false}, {false, false}},
	}
	if g.NumNodes() != 2 {
		t.Errorf("NumNodes = %d; want 2", g.NumNodes())
	}
	if !g.HasEdge(0, 1) {
		t.Error("HasEdge should see the undirected edge")
	}
	if p := g.Parents(1); len(p) != 0 {
		t.Errorf("Parents = %v; want none for undirected", p)
	}
}
