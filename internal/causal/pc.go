package causal

import (
	"fmt"
)

// PCConfig tunes the order-limited PC skeleton search.
type PCConfig struct {
	Alpha    float64 // CI significance level (default 0.01)
	MaxOrder int     // maximum conditioning-set size (default 2)
}

// Skeleton is an undirected adjacency structure over features.
type Skeleton struct {
	Adj [][]bool // Adj[i][j] == Adj[j][i]
}

// Neighbors returns the adjacent features of i.
func (s *Skeleton) Neighbors(i int) []int {
	var out []int
	for j, a := range s.Adj[i] {
		if a {
			out = append(out, j)
		}
	}
	return out
}

// NumEdges counts undirected edges.
func (s *Skeleton) NumEdges() int {
	var n int
	for i := range s.Adj {
		for j := i + 1; j < len(s.Adj[i]); j++ {
			if s.Adj[i][j] {
				n++
			}
		}
	}
	return n
}

// PCSkeleton runs the order-limited PC adjacency search on the rows of x:
// start from a complete graph and delete edge (i, j) whenever some
// conditioning set drawn from the current neighbourhoods renders i and j
// independent. This is the general-purpose variant of the F-node search
// used by FS; it is exposed for causal-structure exploration of telemetry
// and used in tests to validate the CI machinery end-to-end.
func PCSkeleton(x [][]float64, cfg PCConfig) (*Skeleton, error) {
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.01
	}
	if cfg.MaxOrder == 0 {
		cfg.MaxOrder = 2
	}
	tester, err := NewCITester(x)
	if err != nil {
		return nil, err
	}
	d := len(x[0])
	sk := &Skeleton{Adj: make([][]bool, d)}
	for i := range sk.Adj {
		sk.Adj[i] = make([]bool, d)
		for j := range sk.Adj[i] {
			sk.Adj[i][j] = i != j
		}
	}

	for order := 0; order <= cfg.MaxOrder; order++ {
		type removal struct{ i, j int }
		var removals []removal
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if !sk.Adj[i][j] {
					continue
				}
				// Conditioning sets from the neighbourhood of i excluding j.
				pool := neighborsExcluding(sk, i, j)
				if len(pool) < order {
					continue
				}
				removed, err := trySeparate(tester, i, j, pool, order, cfg.Alpha)
				if err != nil {
					return nil, fmt.Errorf("causal: pc edge (%d,%d): %w", i, j, err)
				}
				if removed {
					removals = append(removals, removal{i, j})
				}
			}
		}
		for _, r := range removals {
			sk.Adj[r.i][r.j] = false
			sk.Adj[r.j][r.i] = false
		}
	}
	return sk, nil
}

func neighborsExcluding(sk *Skeleton, i, j int) []int {
	var out []int
	for k, a := range sk.Adj[i] {
		if a && k != j {
			out = append(out, k)
		}
	}
	return out
}

// trySeparate tests all size-`order` conditioning sets from pool.
func trySeparate(t *CITester, i, j int, pool []int, order int, alpha float64) (bool, error) {
	if order == 0 {
		p, err := t.PValue(i, j, nil)
		if err != nil {
			return false, err
		}
		return p >= alpha, nil
	}
	idx := make([]int, order)
	var rec func(start, depth int) (bool, error)
	rec = func(start, depth int) (bool, error) {
		if depth == order {
			cond := make([]int, order)
			for k, pi := range idx {
				cond[k] = pool[pi]
			}
			p, err := t.PValue(i, j, cond)
			if err != nil {
				return false, err
			}
			return p >= alpha, nil
		}
		for s := start; s < len(pool); s++ {
			idx[depth] = s
			ok, err := rec(s+1, depth+1)
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	}
	return rec(0, 0)
}
