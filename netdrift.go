// Package netdrift is a Go implementation of few-shot domain adaptation
// for data-drift mitigation in network management (Johari et al., ICDCS
// 2025): causal-inference-based feature separation (FS) plus conditional-
// GAN reconstruction of domain-variant features (FS+GAN).
//
// Network-management classifiers are trained exclusively on source-domain
// telemetry; when the operational domain drifts, only the lightweight
// Adapter front end is refitted from a handful of labelled target samples —
// the deployed models never need retraining.
//
// Basic use:
//
//	adapter := netdrift.NewAdapter(netdrift.AdapterConfig{
//	    Mode:  netdrift.ModeFSRecon,
//	    Recon: netdrift.ReconGAN,
//	})
//	if err := adapter.Fit(source, fewShotTarget); err != nil { ... }
//	train, _ := adapter.TrainingData(source) // train your model on this
//	aligned, _ := adapter.TransformTarget(testRows)
//	// feed `aligned` to the source-trained model
//
// The heavy lifting lives in the internal packages: internal/core (the
// method), internal/causal (CI tests and the F-node search), internal/nn,
// internal/tree (model substrates), internal/dataset (synthetic 5G
// datasets), internal/baselines (the 11 compared approaches), and
// internal/experiments (the paper's tables). This package re-exports the
// user-facing surface.
package netdrift

import (
	"io"
	"net/http"

	"netdrift/internal/causal"
	"netdrift/internal/core"
	"netdrift/internal/dataset"
	"netdrift/internal/metrics"
	"netdrift/internal/models"
	"netdrift/internal/monitor"
	"netdrift/internal/obs"
	"netdrift/internal/serve"
)

// Core pipeline types (see internal/core).
type (
	// Adapter is the FS / FS+GAN domain-adaptation pipeline.
	Adapter = core.Adapter
	// AdapterConfig assembles the pipeline.
	AdapterConfig = core.AdapterConfig
	// Mode selects FS-only or FS+reconstruction operation.
	Mode = core.Mode
	// ReconKind selects the reconstruction strategy.
	ReconKind = core.ReconKind
	// GANConfig tunes the conditional GAN reconstructor.
	GANConfig = core.GANConfig
	// VAEConfig tunes the VAE/autoencoder ablation reconstructors.
	VAEConfig = core.VAEConfig
	// FeatureSeparator runs the FS causal feature separation alone.
	FeatureSeparator = core.FeatureSeparator
	// FNodeConfig tunes the conditional-independence search.
	FNodeConfig = causal.FNodeConfig
)

// Adapter modes and reconstruction strategies.
const (
	ModeFS         = core.ModeFS
	ModeFSRecon    = core.ModeFSRecon
	ReconGAN       = core.ReconGAN
	ReconGANNoCond = core.ReconGANNoCond
	ReconVAE       = core.ReconVAE
	ReconVanillaAE = core.ReconVanillaAE
)

// Data and model types.
type (
	// Dataset is the tabular telemetry container used across the library.
	Dataset = dataset.Dataset
	// FiveGCConfig parameterizes the synthetic 5GC drift generator.
	FiveGCConfig = dataset.FiveGCConfig
	// FiveGIPCConfig parameterizes the synthetic 5GIPC drift generator.
	FiveGIPCConfig = dataset.FiveGIPCConfig
	// DriftedPair is a source domain plus one drifted target domain.
	DriftedPair = dataset.Drifted
	// DriftedMulti is a source domain plus several drifted target domains.
	DriftedMulti = dataset.DriftedMulti
	// Classifier is the model-agnostic classifier interface (TNet, MLP,
	// random forest, gradient-boosted trees).
	Classifier = models.Classifier
	// ClassifierKind identifies a classifier family.
	ClassifierKind = models.Kind
	// ClassifierOptions tunes classifier capacity.
	ClassifierOptions = models.Options
)

// Classifier families.
const (
	TNet = models.KindTNet
	MLP  = models.KindMLP
	RF   = models.KindRF
	XGB  = models.KindXGB
)

// NewAdapter builds an unfitted FS / FS+GAN adapter.
func NewAdapter(cfg AdapterConfig) *Adapter { return core.NewAdapter(cfg) }

// NewFeatureSeparator builds the FS stage alone.
func NewFeatureSeparator(cfg FNodeConfig) *FeatureSeparator {
	return core.NewFeatureSeparator(cfg)
}

// NewClassifier constructs one of the four classifier families.
func NewClassifier(kind ClassifierKind, opts ClassifierOptions) (Classifier, error) {
	return models.New(kind, opts)
}

// PredictClasses runs a classifier and returns argmax labels.
func PredictClasses(c Classifier, x [][]float64) ([]int, error) {
	return models.PredictClasses(c, x)
}

// MacroF1 scores predictions with the paper's metric (scaled to [0, 100]).
func MacroF1(yTrue, yPred []int, numClasses int) (float64, error) {
	return metrics.MacroF1Score(yTrue, yPred, numClasses)
}

// Synthetic5GC generates the synthetic stand-in for the paper's 5GC
// failure-classification dataset.
func Synthetic5GC(cfg dataset.FiveGCConfig) (*dataset.Drifted, error) {
	return dataset.Synthetic5GC(cfg)
}

// Synthetic5GIPC generates the synthetic stand-in for the paper's 5GIPC
// fault-detection dataset.
func Synthetic5GIPC(cfg dataset.FiveGIPCConfig) (*dataset.DriftedMulti, error) {
	return dataset.Synthetic5GIPC(cfg)
}

// Drift-monitoring types (see internal/monitor): the trigger for
// refreshing the adapter when the network drifts again.
type (
	// DriftDetector compares telemetry windows against the source domain.
	DriftDetector = monitor.Detector
	// DriftConfig tunes the detector.
	DriftConfig = monitor.Config
	// DriftReport is one window's drift verdict.
	DriftReport = monitor.Report
)

// NewDriftDetector creates an unfitted drift detector.
func NewDriftDetector(cfg DriftConfig) *DriftDetector { return monitor.New(cfg) }

// LoadAdapter restores an adapter saved with (*Adapter).Save — the fitted
// scaler, the variant/invariant split, and the trained generator weights —
// so the inference path can be deployed without refitting.
func LoadAdapter(r io.Reader) (*Adapter, error) { return core.LoadAdapter(r) }

// Observability types (see internal/obs): set AdapterConfig.Obs (or
// DriftConfig.Obs) to light up metrics, span tracing, and training hooks
// across the pipeline. A nil Observer keeps every instrumented path at its
// uninstrumented cost and produces byte-identical adaptation results.
type (
	// Observer bundles a metrics registry, a span sink, and typed hooks.
	Observer = obs.Observer
	// Metrics is the concurrency-safe registry behind Observer.Registry;
	// it renders Prometheus text format and is mountable as a /metrics
	// http.Handler.
	Metrics = obs.Registry
	// SpanSink receives finished trace spans.
	SpanSink = obs.Sink
	// TrainHook observes per-epoch reconstructor losses.
	TrainHook = obs.TrainHook
	// SearchHook observes CI tests and per-feature verdicts from FS.
	SearchHook = obs.SearchHook
)

// NewObserver creates an Observer with a fresh metrics registry and no
// span sink.
func NewObserver() *Observer { return obs.New() }

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Serving types (see internal/serve): micro-batch request coalescing and
// lock-free artifact hot-swap for deploying a fitted adapter (plus an
// optional classifier) behind an HTTP endpoint. cmd/driftserve is the
// ready-made binary; these re-exports let a custom server embed the same
// machinery.
type (
	// Bundle pairs a fitted Adapter with an optional MLP classifier under
	// one artifact id.
	Bundle = serve.Bundle
	// BundleRegistry hot-swaps the active Bundle behind an atomic pointer.
	BundleRegistry = serve.Registry
	// Coalescer batches concurrent adaptation requests into micro-batched
	// forward passes.
	Coalescer = serve.Coalescer
	// CoalescerOptions tunes batching (MaxBatch, MaxWait, Workers).
	CoalescerOptions = serve.Options
)

// NewBundleRegistry creates an empty hot-swap registry; obs may be nil.
func NewBundleRegistry(o *Observer) *BundleRegistry { return serve.NewRegistry(o) }

// NewCoalescer starts a request coalescer serving from reg's current
// bundle. Close it to drain queued requests.
func NewCoalescer(reg *BundleRegistry, opts CoalescerOptions) *Coalescer {
	return serve.NewCoalescer(reg, opts)
}

// NewAdaptServer wires the registry and coalescer into the driftserve
// HTTP API (POST /v1/adapt, GET /healthz, GET /metrics); o may be nil.
func NewAdaptServer(reg *BundleRegistry, co *Coalescer, o *Observer) http.Handler {
	return serve.NewServer(reg, co, o)
}
