module netdrift

go 1.22
