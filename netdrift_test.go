package netdrift_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"netdrift"
	"netdrift/internal/dataset"
)

// TestPublicAPIEndToEnd exercises the exported surface the way the README
// quickstart does: generate a drifted problem, adapt, train, align, score.
func TestPublicAPIEndToEnd(t *testing.T) {
	d, err := netdrift.Synthetic5GIPC(dataset.FiveGIPCConfig{
		Seed:         21,
		SourceNormal: 300, SourceFaults: [4]int{20, 30, 60, 50},
		TargetNormal: 150, TargetFaults: [4]int{10, 15, 25, 25},
		TargetTrainPerGroup: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	support, _, err := d.Targets[0].Train.FewShot(5, true, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}

	adapter := netdrift.NewAdapter(netdrift.AdapterConfig{
		Mode:  netdrift.ModeFSRecon,
		Recon: netdrift.ReconGAN,
		GAN:   netdrift.GANConfig{Epochs: 8},
		Seed:  23,
	})
	if err := adapter.Fit(d.Source, support); err != nil {
		t.Fatal(err)
	}
	if len(adapter.VariantFeatures()) == 0 {
		t.Fatal("no variant features identified on a drifted problem")
	}

	train, err := adapter.TrainingData(d.Source)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := netdrift.NewClassifier(netdrift.MLP, netdrift.ClassifierOptions{Seed: 23, Epochs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Fit(train.X, train.Y, 2); err != nil {
		t.Fatal(err)
	}

	aligned, err := adapter.TransformTarget(d.Targets[0].Test.X)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := netdrift.PredictClasses(clf, aligned)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := netdrift.MacroF1(d.Targets[0].Test.Y, pred, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f1 < 40 {
		t.Errorf("adapted F1 = %.1f; implausibly low for the quick setting", f1)
	}
	t.Logf("public-API end-to-end: F1 = %.1f, %d variant features",
		f1, len(adapter.VariantFeatures()))
}

// TestPublicAPIFeatureSeparatorAlone checks the FS-only entry point.
func TestPublicAPIFeatureSeparatorAlone(t *testing.T) {
	d, err := netdrift.Synthetic5GC(dataset.FiveGCConfig{
		Seed: 31, SourceSamples: 320, TargetTrainPool: 96, TargetTestSamples: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	sep := netdrift.NewFeatureSeparator(netdrift.FNodeConfig{})
	if err := sep.Fit(d.Source.X, d.TargetTrain.X); err != nil {
		t.Fatal(err)
	}
	variant := sep.Variant()
	if len(variant) == 0 {
		t.Fatal("FS found nothing on a drifted problem")
	}
	truth := make(map[int]bool, len(d.TrueVariant))
	for _, v := range d.TrueVariant {
		truth[v] = true
	}
	var tp int
	for _, v := range variant {
		if truth[v] {
			tp++
		}
	}
	if precision := float64(tp) / float64(len(variant)); precision < 0.8 {
		t.Errorf("FS precision = %.2f against ground truth; want >= 0.8", precision)
	}
	// All classifier kind constants resolve through the factory.
	for _, kind := range []netdrift.ClassifierKind{netdrift.TNet, netdrift.MLP, netdrift.RF, netdrift.XGB} {
		if _, err := netdrift.NewClassifier(kind, netdrift.ClassifierOptions{}); err != nil {
			t.Errorf("NewClassifier(%v): %v", kind, err)
		}
	}
}

// TestPublicAPIServing exercises the re-exported serving surface: build a
// bundle from a fitted adapter, hot-swap it into a registry, and serve a
// coalesced adaptation request over HTTP.
func TestPublicAPIServing(t *testing.T) {
	d, err := netdrift.Synthetic5GC(dataset.FiveGCConfig{
		Seed: 41, SourceSamples: 320, TargetTrainPool: 96, TargetTestSamples: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	support, _, err := d.TargetTrain.FewShot(8, false, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	adapter := netdrift.NewAdapter(netdrift.AdapterConfig{
		Mode:  netdrift.ModeFSRecon,
		Recon: netdrift.ReconGAN,
		GAN:   netdrift.GANConfig{Epochs: 6},
		Seed:  43,
	})
	if err := adapter.Fit(d.Source, support); err != nil {
		t.Fatal(err)
	}

	reg := netdrift.NewBundleRegistry(nil)
	reg.Swap(&netdrift.Bundle{ID: "public-api", Adapter: adapter})
	co := netdrift.NewCoalescer(reg, netdrift.CoalescerOptions{MaxBatch: 8})
	defer co.Close()
	srv := httptest.NewServer(netdrift.NewAdaptServer(reg, co, nil))
	defer srv.Close()

	body, _ := json.Marshal(map[string]any{"rows": d.TargetTest.X[:3]})
	res, err := http.Post(srv.URL+"/v1/adapt", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var got struct {
		BundleID string      `json:"bundle_id"`
		Rows     [][]float64 `json:"rows"`
	}
	if err := json.NewDecoder(res.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.BundleID != "public-api" || len(got.Rows) != 3 {
		t.Fatalf("unexpected response: bundle %q, %d rows", got.BundleID, len(got.Rows))
	}
	want, err := adapter.TransformTarget(d.TargetTest.X[:3])
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got.Rows[i][j] != want[i][j] {
				t.Fatalf("served row %d differs from TransformTarget at col %d", i, j)
			}
		}
	}
}
